//! The plan cache: memoization of whole [`OptimizeOutcome`]s across repeated queries.
//!
//! The decorrelation rewrite pays off only while the optimizer itself stays cheap. A
//! service that answers the same UDF-laden query shapes for millions of users re-runs
//! the normalize → algebraize/merge → apply-removal → cleanup → strategy pipeline on
//! every request — pure waste once the first request has paid for it. This module
//! provides the memo: a concurrency-safe (`RwLock` + LRU, dependency-free) cache from a
//! *structural fingerprint* of the planned query to the full [`OptimizeOutcome`] the
//! pipeline produced for it.
//!
//! ## Cache key
//!
//! A lookup matches only when **all** of the following agree:
//!
//! 1. the FNV-1a structural hash of the normalized input plan (and, to rule out hash
//!    collisions, the stored plan compares equal to the probe plan);
//! 2. the [`FunctionRegistry`] generation — bumped by every `register_udf` /
//!    `register_aggregate`, so redefining a UDF body can never serve a plan built from
//!    the old definition;
//! 3. the catalog DDL generation — bumped by `CREATE/DROP TABLE` and `CREATE INDEX`,
//!    so plans bound against a changed schema become unreachable;
//! 4. the pipeline fingerprint — pass names plus the [`PassManagerOptions`] knobs, so
//!    e.g. an `EXPLAIN` (snapshots on) never serves a snapshot-less hot-path entry and
//!    a forced-decorrelated pipeline never serves a cost-based one.
//!
//! Row inserts deliberately do **not** invalidate: they can only make a cached
//! cost-based strategy choice suboptimal, never incorrect (the cache stores plans, not
//! results — execution always runs against live data).
//!
//! ## Concurrency & eviction
//!
//! Lookups take the read lock only: LRU recency is an `AtomicU64` tick per entry, and
//! hit/miss/eviction counters are atomics, so concurrent readers never serialize.
//! Inserts take the write lock, evicting the least-recently-used entry when the cache
//! is at capacity. Entries from older registry/DDL generations are reaped on insert
//! (counted as invalidations) — they can never be hit again, so they only waste slots.
//!
//! [`FunctionRegistry`]: decorr_udf::FunctionRegistry
//! [`PassManagerOptions`]: crate::pass::PassManagerOptions

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use decorr_algebra::RelExpr;

use crate::pass::OptimizeOutcome;

/// Default number of cached plans (small: each entry holds a handful of plan trees).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

// ----------------------------------------------------------------------- fingerprints

/// Structural FNV-1a fingerprint of a plan — delegates to [`RelExpr::fingerprint`],
/// the workspace-wide plan identity the executor's cardinality collector and the
/// feedback store also key on. Collisions are possible in principle, which is why
/// cache entries also store the key plan and compare it with `==` on lookup.
pub fn plan_fingerprint(plan: &RelExpr) -> u64 {
    plan.fingerprint()
}

/// Everything besides the plan that the cached outcome depends on. Two lookups share an
/// entry only when every field agrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheContext {
    /// [`FunctionRegistry::generation`](decorr_udf::FunctionRegistry::generation) at
    /// optimize time.
    pub registry_generation: u64,
    /// Catalog DDL generation at optimize time; `None` when optimizing without a
    /// catalog (the standalone rewrite tool). Catalog-less entries live in their own
    /// generation domain: a catalog pipeline's inserts never reap them, because future
    /// catalog-less lookups can still legitimately hit them.
    pub ddl_generation: Option<u64>,
    /// The runtime [`FeedbackStore`](crate::feedback::FeedbackStore) generation the
    /// optimize ran under; `None` for pipelines whose outcome does not depend on the
    /// feedback-calibrated cost model (forced iterative/decorrelated, or no store
    /// attached). Like `ddl_generation`, the two domains never invalidate each other:
    /// a feedback-blind entry stays servable across feedback generations.
    pub feedback_generation: Option<u64>,
    /// Fingerprint of the pipeline shape and options (see
    /// [`PassManager::pipeline_fingerprint`](crate::pass::PassManager::pipeline_fingerprint)).
    pub pipeline_fingerprint: u64,
}

// ----------------------------------------------------------------------------- stats

/// A point-in-time snapshot of the cache counters, surfaced through
/// `PipelineReport::cache` and the EXPLAIN per-pass table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the full pipeline.
    pub misses: u64,
    /// Entries displaced by the LRU policy at capacity.
    pub evictions: u64,
    /// Stale-generation entries reaped (UDF redefinition / DDL).
    pub invalidations: u64,
    /// Outcomes stored.
    pub inserts: u64,
    /// Live entries.
    pub entries: usize,
    /// Configured capacity.
    pub capacity: usize,
}

impl PlanCacheStats {
    /// Hit fraction over all lookups so far (0.0 when the cache was never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What the cache did for one `optimize` call, attached to that call's
/// `PipelineReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheActivity {
    /// True when the outcome was served from the cache.
    pub hit: bool,
    /// The structural fingerprint of the probed plan.
    pub key_hash: u64,
    /// The registry generation the lookup was made under.
    pub registry_generation: u64,
    /// Counter snapshot *after* this lookup.
    pub stats: PlanCacheStats,
}

// ----------------------------------------------------------------------------- cache

struct Entry {
    /// The exact plan this entry was keyed on; compared on lookup to rule out
    /// fingerprint collisions.
    key_plan: RelExpr,
    context: CacheContext,
    outcome: OptimizeOutcome,
    /// LRU recency tick; atomic so read-lock lookups can touch it.
    last_used: AtomicU64,
}

#[derive(Default)]
struct Buckets {
    map: HashMap<u64, Vec<Entry>>,
    len: usize,
}

/// A concurrency-safe LRU cache from (plan fingerprint, [`CacheContext`]) to
/// [`OptimizeOutcome`]. See the module docs for the key and invalidation rules.
pub struct PlanCache {
    capacity: usize,
    buckets: RwLock<Buckets>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    inserts: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// A cache with the default capacity.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// A cache holding at most `capacity` outcomes. A capacity of 0 disables caching:
    /// every lookup misses and nothing is stored.
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            buckets: RwLock::new(Buckets::default()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.buckets.read().expect("plan cache poisoned").len
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are preserved — they describe the cache's lifetime).
    pub fn clear(&self) {
        let mut buckets = self.buckets.write().expect("plan cache poisoned");
        buckets.map.clear();
        buckets.len = 0;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
        }
    }

    /// Looks up the outcome cached for `plan` under `context`. Takes the read lock
    /// only; a hit touches the entry's LRU tick and clones the stored outcome.
    pub fn lookup(&self, plan: &RelExpr, context: &CacheContext) -> Option<OptimizeOutcome> {
        self.lookup_hashed(plan_fingerprint(plan), plan, context)
    }

    /// [`lookup`](PlanCache::lookup) with a precomputed [`plan_fingerprint`], for
    /// callers that reuse the hash across lookup, insert and reporting.
    pub fn lookup_hashed(
        &self,
        hash: u64,
        plan: &RelExpr,
        context: &CacheContext,
    ) -> Option<OptimizeOutcome> {
        if self.capacity == 0 {
            // Still a probe: the miss counter must reflect that caching is disabled
            // but being consulted, or stats would claim the cache was never touched.
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let buckets = self.buckets.read().expect("plan cache poisoned");
        let found = buckets.map.get(&hash).and_then(|entries| {
            entries
                .iter()
                .find(|e| e.context == *context && e.key_plan == *plan)
        });
        match found {
            Some(entry) => {
                let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                entry.last_used.store(tick, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.outcome.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `outcome` for `plan` under `context`, evicting the least-recently-used
    /// entry when at capacity and reaping any entry from an older registry/DDL
    /// generation (those can never be hit again).
    pub fn insert(&self, plan: &RelExpr, context: &CacheContext, outcome: OptimizeOutcome) {
        self.insert_hashed(plan_fingerprint(plan), plan, context, outcome)
    }

    /// [`insert`](PlanCache::insert) with a precomputed [`plan_fingerprint`].
    pub fn insert_hashed(
        &self,
        hash: u64,
        plan: &RelExpr,
        context: &CacheContext,
        outcome: OptimizeOutcome,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut buckets = self.buckets.write().expect("plan cache poisoned");
        // Reap stale-generation entries across the whole cache: a cheap O(entries)
        // sweep on the (already pipeline-priced) miss path. Generations are monotonic
        // per database, so an entry behind the inserting call's view can never be hit
        // again regardless of which pipeline stored it. DDL generations are only
        // comparable when both sides carry one — catalog-less entries are never stale
        // relative to a catalog pipeline's view.
        let mut reaped = 0usize;
        for entries in buckets.map.values_mut() {
            let before = entries.len();
            entries.retain(|e| {
                e.context.registry_generation >= context.registry_generation
                    && match (e.context.ddl_generation, context.ddl_generation) {
                        (Some(entry_gen), Some(current_gen)) => entry_gen >= current_gen,
                        _ => true,
                    }
                    && match (e.context.feedback_generation, context.feedback_generation) {
                        (Some(entry_gen), Some(current_gen)) => entry_gen >= current_gen,
                        _ => true,
                    }
            });
            reaped += before - entries.len();
        }
        if reaped > 0 {
            buckets.map.retain(|_, v| !v.is_empty());
            buckets.len -= reaped;
            self.invalidations
                .fetch_add(reaped as u64, Ordering::Relaxed);
        }
        // Replace an existing entry for the same key in place.
        if let Some(entries) = buckets.map.get_mut(&hash) {
            if let Some(existing) = entries
                .iter_mut()
                .find(|e| e.context == *context && e.key_plan == *plan)
            {
                existing.outcome = outcome;
                let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                existing.last_used.store(tick, Ordering::Relaxed);
                self.inserts.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        while buckets.len >= self.capacity {
            Self::evict_lru(&mut buckets);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        buckets.map.entry(hash).or_default().push(Entry {
            key_plan: plan.clone(),
            context: *context,
            outcome,
            last_used: AtomicU64::new(tick),
        });
        buckets.len += 1;
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every *feedback-sensitive* entry keyed on the given plan fingerprint,
    /// regardless of generations — the runtime feedback loop calls this when a
    /// fingerprint's recorded q-error crosses the threshold, so the next optimize
    /// re-decides with the calibrated numbers. Entries whose pipeline ignored the
    /// cost model (`feedback_generation == None`) are untouched: re-deciding them
    /// could not change anything. Returns the number of entries removed (counted as
    /// invalidations).
    pub fn invalidate_fingerprint(&self, hash: u64) -> usize {
        let mut buckets = self.buckets.write().expect("plan cache poisoned");
        let Some(entries) = buckets.map.get_mut(&hash) else {
            return 0;
        };
        let before = entries.len();
        entries.retain(|e| e.context.feedback_generation.is_none());
        let removed = before - entries.len();
        if entries.is_empty() {
            buckets.map.remove(&hash);
        }
        buckets.len -= removed;
        self.invalidations
            .fetch_add(removed as u64, Ordering::Relaxed);
        removed
    }

    /// Removes the entry with the smallest LRU tick. O(entries), which is fine at the
    /// intended capacities (hundreds) and keeps the cache dependency-free.
    fn evict_lru(buckets: &mut Buckets) {
        let mut victim: Option<(u64, usize, u64)> = None; // (bucket, index, tick)
        for (&hash, entries) in buckets.map.iter() {
            for (i, entry) in entries.iter().enumerate() {
                let tick = entry.last_used.load(Ordering::Relaxed);
                if victim.map(|(_, _, t)| tick < t).unwrap_or(true) {
                    victim = Some((hash, i, tick));
                }
            }
        }
        if let Some((hash, index, _)) = victim {
            let entries = buckets.map.get_mut(&hash).expect("victim bucket exists");
            entries.remove(index);
            if entries.is_empty() {
                buckets.map.remove(&hash);
            }
            buckets.len -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::PassManager;
    use decorr_algebra::schema::MapProvider;
    use decorr_common::{Column, DataType, Schema};
    use decorr_parser::parse_and_plan;
    use decorr_udf::FunctionRegistry;

    fn provider() -> MapProvider {
        MapProvider::new().with_table(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ]),
        )
    }

    fn outcome_for(sql: &str) -> (RelExpr, OptimizeOutcome) {
        let plan = parse_and_plan(sql).unwrap();
        let outcome = PassManager::rewrite_pipeline()
            .optimize(&plan, &FunctionRegistry::new(), &provider(), None)
            .unwrap();
        (plan, outcome)
    }

    fn ctx(generation: u64) -> CacheContext {
        CacheContext {
            registry_generation: generation,
            ddl_generation: Some(0),
            feedback_generation: Some(1),
            pipeline_fingerprint: 7,
        }
    }

    #[test]
    fn fingerprint_distinguishes_plans_and_is_stable() {
        let a = parse_and_plan("select a from t").unwrap();
        let a2 = parse_and_plan("select a from t").unwrap();
        let b = parse_and_plan("select b from t").unwrap();
        assert_eq!(plan_fingerprint(&a), plan_fingerprint(&a2));
        assert_ne!(plan_fingerprint(&a), plan_fingerprint(&b));
    }

    #[test]
    fn hit_miss_and_replacement() {
        let cache = PlanCache::with_capacity(4);
        let (plan, outcome) = outcome_for("select a from t");
        assert!(cache.lookup(&plan, &ctx(0)).is_none());
        cache.insert(&plan, &ctx(0), outcome.clone());
        let hit = cache.lookup(&plan, &ctx(0)).expect("hit after insert");
        assert_eq!(hit.plan, outcome.plan);
        // Different registry generation or pipeline never hits.
        assert!(cache.lookup(&plan, &ctx(1)).is_none());
        let other_pipeline = CacheContext {
            pipeline_fingerprint: 8,
            ..ctx(0)
        };
        assert!(cache.lookup(&plan, &other_pipeline).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_eviction_at_capacity_keeps_recently_used() {
        let cache = PlanCache::with_capacity(2);
        let (plan_a, out_a) = outcome_for("select a from t");
        let (plan_b, out_b) = outcome_for("select b from t");
        let (plan_c, out_c) = outcome_for("select a, b from t");
        cache.insert(&plan_a, &ctx(0), out_a);
        cache.insert(&plan_b, &ctx(0), out_b);
        // Touch A so B becomes the LRU victim.
        assert!(cache.lookup(&plan_a, &ctx(0)).is_some());
        cache.insert(&plan_c, &ctx(0), out_c);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(&plan_a, &ctx(0)).is_some(), "A was touched");
        assert!(cache.lookup(&plan_b, &ctx(0)).is_none(), "B was evicted");
        assert!(cache.lookup(&plan_c, &ctx(0)).is_some());
    }

    #[test]
    fn stale_generations_are_reaped_on_insert() {
        let cache = PlanCache::with_capacity(8);
        let (plan_a, out_a) = outcome_for("select a from t");
        let (plan_b, out_b) = outcome_for("select b from t");
        cache.insert(&plan_a, &ctx(0), out_a);
        cache.insert(&plan_b, &ctx(1), out_b);
        assert_eq!(cache.len(), 1, "generation-0 entry reaped");
        assert_eq!(cache.stats().invalidations, 1);
        assert!(cache.lookup(&plan_a, &ctx(0)).is_none());
        assert!(cache.lookup(&plan_b, &ctx(1)).is_some());
    }

    #[test]
    fn invalidate_fingerprint_removes_only_feedback_sensitive_entries() {
        let cache = PlanCache::with_capacity(8);
        let (plan, out) = outcome_for("select a from t");
        let sensitive = ctx(0);
        let blind = CacheContext {
            feedback_generation: None,
            pipeline_fingerprint: 9, // a different pipeline (e.g. forced-iterative)
            ..ctx(0)
        };
        cache.insert(&plan, &sensitive, out.clone());
        cache.insert(&plan, &blind, out);
        assert_eq!(cache.len(), 2);
        let removed = cache.invalidate_fingerprint(plan_fingerprint(&plan));
        assert_eq!(removed, 1, "only the cost-based entry goes");
        assert!(cache.lookup(&plan, &sensitive).is_none());
        assert!(
            cache.lookup(&plan, &blind).is_some(),
            "feedback-blind pipelines keep their entries"
        );
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.invalidate_fingerprint(0xDEAD_BEEF), 0);
    }

    #[test]
    fn newer_feedback_generations_reap_stale_entries_on_insert() {
        let cache = PlanCache::with_capacity(8);
        let (plan_a, out_a) = outcome_for("select a from t");
        let (plan_b, out_b) = outcome_for("select b from t");
        cache.insert(&plan_a, &ctx(0), out_a);
        let newer = CacheContext {
            feedback_generation: Some(2),
            ..ctx(0)
        };
        cache.insert(&plan_b, &newer, out_b);
        assert_eq!(cache.len(), 1, "feedback generation 1 entry reaped");
        assert!(cache.lookup(&plan_a, &ctx(0)).is_none());
        assert!(cache.lookup(&plan_b, &newer).is_some());
    }

    #[test]
    fn catalog_less_entries_survive_catalog_pipeline_inserts() {
        // Catalog-less contexts (ddl_generation None) live in their own domain: an
        // insert from a catalog pipeline at a high DDL generation must not reap them,
        // since future catalog-less lookups can still hit them.
        let cache = PlanCache::with_capacity(8);
        let (plan_a, out_a) = outcome_for("select a from t");
        let (plan_b, out_b) = outcome_for("select b from t");
        let no_catalog = CacheContext {
            registry_generation: 0,
            ddl_generation: None,
            feedback_generation: None,
            pipeline_fingerprint: 7,
        };
        let with_catalog = CacheContext {
            registry_generation: 0,
            ddl_generation: Some(5),
            feedback_generation: None,
            pipeline_fingerprint: 7,
        };
        cache.insert(&plan_a, &no_catalog, out_a);
        cache.insert(&plan_b, &with_catalog, out_b);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().invalidations, 0);
        assert!(cache.lookup(&plan_a, &no_catalog).is_some());
        assert!(cache.lookup(&plan_b, &with_catalog).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching_but_counts_probes() {
        let cache = PlanCache::with_capacity(0);
        let (plan, outcome) = outcome_for("select a from t");
        cache.insert(&plan, &ctx(0), outcome);
        assert!(cache.lookup(&plan, &ctx(0)).is_none());
        assert_eq!(cache.len(), 0);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "disabled caches still count lookups");
        assert_eq!(stats.inserts, 0);
    }

    #[test]
    fn concurrent_lookups_and_inserts_are_safe() {
        use std::sync::Arc;
        let cache = Arc::new(PlanCache::with_capacity(4));
        let (plan, outcome) = outcome_for("select a from t");
        cache.insert(&plan, &ctx(0), outcome);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let cache = Arc::clone(&cache);
                let plan = plan.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if i % 2 == 0 {
                            assert!(cache.lookup(&plan, &ctx(0)).is_some());
                        } else {
                            let (p, o) = outcome_for("select b from t");
                            cache.insert(&p, &ctx(0), o);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.stats().hits >= 400);
    }
}
