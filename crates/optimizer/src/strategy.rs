//! Cost-based choice between the iterative and decorrelated plan alternatives.

use decorr_algebra::RelExpr;
use decorr_storage::Catalog;
use decorr_udf::FunctionRegistry;

use crate::cost::{estimate_with, CostEstimate, CostParams};

/// Which alternative the optimizer selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyChoice {
    /// Execute the original plan, invoking UDFs iteratively per tuple.
    Iterative,
    /// Execute the decorrelated (set-oriented) plan.
    Decorrelated,
}

/// The decision together with the estimates that produced it, for EXPLAIN-style output.
#[derive(Debug, Clone)]
pub struct StrategyDecision {
    pub choice: StrategyChoice,
    pub iterative: CostEstimate,
    pub decorrelated: CostEstimate,
}

impl StrategyDecision {
    /// One-line explanation, shown by the engine's EXPLAIN output.
    pub fn summary(&self) -> String {
        format!(
            "{:?} chosen (iterative cost ≈ {:.0}, decorrelated cost ≈ {:.0})",
            self.choice, self.iterative.cost, self.decorrelated.cost
        )
    }
}

/// Compares the cost of the original (iterative) plan against the rewritten
/// (decorrelated) plan and picks the cheaper one. This is the paper's point about using
/// the rules inside a cost-based optimizer: for small invocation counts the iterative
/// plan can win (Experiment 3), and it remains available as an alternative.
pub fn choose_strategy(
    original: &RelExpr,
    rewritten: &RelExpr,
    catalog: &Catalog,
    registry: &FunctionRegistry,
) -> StrategyDecision {
    choose_strategy_with(
        original,
        rewritten,
        catalog,
        registry,
        &CostParams::default(),
    )
}

/// [`choose_strategy`] calibrated for the executor's runtime parameters: with a worker
/// pool attached, the scan-heavy decorrelated plan gets cheaper faster than the
/// index-probe-bound iterative plan, shifting the crossover point the paper observes in
/// Experiment 3 toward smaller invocation counts.
pub fn choose_strategy_with(
    original: &RelExpr,
    rewritten: &RelExpr,
    catalog: &Catalog,
    registry: &FunctionRegistry,
    params: &CostParams,
) -> StrategyDecision {
    let iterative = estimate_with(original, catalog, registry, params);
    let decorrelated = estimate_with(rewritten, catalog, registry, params);
    let choice = if decorrelated.cost <= iterative.cost {
        StrategyChoice::Decorrelated
    } else {
        StrategyChoice::Iterative
    };
    StrategyDecision {
        choice,
        iterative,
        decorrelated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::{Column, DataType, Row, Schema, Value};
    use decorr_parser::{parse_and_plan, parse_function};

    fn setup(orders: i64) -> (Catalog, FunctionRegistry) {
        let mut c = Catalog::new();
        c.create_table(
            "customer",
            Schema::new(vec![Column::new("custkey", DataType::Int)]),
        )
        .unwrap();
        c.create_table(
            "orders",
            Schema::new(vec![
                Column::new("custkey", DataType::Int),
                Column::new("totalprice", DataType::Float),
            ]),
        )
        .unwrap();
        c.insert_rows(
            "customer",
            (0..(orders / 10).max(1))
                .map(|i| Row::new(vec![Value::Int(i)]))
                .collect(),
        )
        .unwrap();
        c.insert_rows(
            "orders",
            (0..orders)
                .map(|i| Row::new(vec![Value::Int(i % 100), Value::Float(i as f64)]))
                .collect(),
        )
        .unwrap();
        let mut registry = FunctionRegistry::new();
        registry.register_udf(
            parse_function(
                "create function tb(int ckey) returns float as \
                 begin return select sum(totalprice) from orders where custkey = :ckey; end",
            )
            .unwrap(),
        );
        (c, registry)
    }

    fn rewritten_for(
        original: &RelExpr,
        catalog: &Catalog,
        registry: &FunctionRegistry,
    ) -> RelExpr {
        let provider = decorr_exec::CatalogProvider::new(catalog, registry);
        let outcome = crate::pass::PassManager::rewrite_pipeline()
            .optimize(original, registry, &provider, Some(catalog))
            .unwrap();
        assert!(outcome.decorrelated, "notes: {:?}", outcome.notes);
        outcome.plan
    }

    #[test]
    fn decorrelated_wins_at_scale() {
        let (catalog, registry) = setup(20_000);
        let original = parse_and_plan("select custkey, tb(custkey) from customer").unwrap();
        let rewritten = rewritten_for(&original, &catalog, &registry);
        let decision = choose_strategy(&original, &rewritten, &catalog, &registry);
        assert_eq!(decision.choice, StrategyChoice::Decorrelated);
        assert!(decision.summary().contains("Decorrelated"));
    }

    #[test]
    fn iterative_can_win_for_tiny_outer_side() {
        let (catalog, registry) = setup(20_000);
        // A single invocation against a full scan+aggregate of the orders table: the
        // iterative plan only touches the index once, the rewritten plan scans everything.
        let original =
            parse_and_plan("select custkey, tb(custkey) from customer where custkey = 0").unwrap();
        let rewritten = rewritten_for(&original, &catalog, &registry);
        let decision = choose_strategy(&original, &rewritten, &catalog, &registry);
        assert_eq!(decision.choice, StrategyChoice::Iterative);
    }
}
