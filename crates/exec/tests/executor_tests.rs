//! End-to-end tests of the executor and interpreter: SQL text is parsed, lowered to the
//! logical algebra and executed against an in-memory catalog.

use std::sync::Arc;

use decorr_common::{Column, DataType, Row, Schema, Value};
use decorr_exec::{ExecConfig, Executor};
use decorr_parser::{parse_and_plan, parse_function};
use decorr_storage::Catalog;
use decorr_udf::FunctionRegistry;

/// Builds a small TPC-H-flavoured catalog used throughout these tests.
fn setup() -> (Arc<Catalog>, FunctionRegistry) {
    let mut catalog = Catalog::new();
    catalog
        .create_table(
            "customer",
            Schema::new(vec![
                Column::new("custkey", DataType::Int).not_null(),
                Column::new("name", DataType::Str),
                Column::new("nationkey", DataType::Int),
            ]),
        )
        .unwrap();
    catalog
        .create_table(
            "orders",
            Schema::new(vec![
                Column::new("orderkey", DataType::Int).not_null(),
                Column::new("custkey", DataType::Int),
                Column::new("totalprice", DataType::Float),
            ]),
        )
        .unwrap();
    // 10 customers; customer i has i orders each worth 100*i.
    for i in 1..=10i64 {
        catalog
            .insert_rows(
                "customer",
                vec![Row::new(vec![
                    Value::Int(i),
                    Value::str(format!("Customer#{i}")),
                    Value::Int(i % 3),
                ])],
            )
            .unwrap();
    }
    let mut orderkey = 0i64;
    for i in 1..=10i64 {
        for _ in 0..i {
            orderkey += 1;
            catalog
                .insert_rows(
                    "orders",
                    vec![Row::new(vec![
                        Value::Int(orderkey),
                        Value::Int(i),
                        Value::Float(100.0 * i as f64),
                    ])],
                )
                .unwrap();
        }
    }
    catalog.create_index("orders", "custkey").unwrap();
    catalog.create_index("customer", "custkey").unwrap();
    (Arc::new(catalog), FunctionRegistry::new())
}

fn run(catalog: &Arc<Catalog>, registry: &FunctionRegistry, sql: &str) -> decorr_exec::ResultSet {
    let plan = parse_and_plan(sql).unwrap();
    Executor::new(Arc::clone(catalog), Arc::new(registry.clone()))
        .execute(&plan)
        .unwrap()
}

#[test]
fn scan_filter_project() {
    let (catalog, registry) = setup();
    let rs = run(
        &catalog,
        &registry,
        "select name from customer where custkey > 8",
    );
    assert_eq!(rs.canonical(), vec!["('Customer#10')", "('Customer#9')"]);
}

#[test]
fn arithmetic_and_case_in_projection() {
    let (catalog, registry) = setup();
    let rs = run(
        &catalog,
        &registry,
        "select custkey, case when custkey > 5 then 'big' else 'small' end as size \
         from customer where custkey = 1 or custkey = 9",
    );
    assert_eq!(rs.canonical(), vec!["(1, 'small')", "(9, 'big')"]);
}

#[test]
fn group_by_aggregation() {
    let (catalog, registry) = setup();
    let rs = run(
        &catalog,
        &registry,
        "select custkey, sum(totalprice) as total, count(*) as n from orders group by custkey",
    );
    assert_eq!(rs.len(), 10);
    let idx = rs.schema.index_of(None, "custkey").unwrap();
    for row in &rs.rows {
        let k = row.get(idx).as_int().unwrap();
        assert_eq!(row.get(1), &Value::Float(100.0 * k as f64 * k as f64));
        assert_eq!(row.get(2), &Value::Int(k));
    }
}

#[test]
fn scalar_aggregate_over_empty_input_returns_one_row() {
    let (catalog, registry) = setup();
    let rs = run(
        &catalog,
        &registry,
        "select count(*) as n, sum(totalprice) as s from orders where custkey = 999",
    );
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0].get(0), &Value::Int(0));
    assert!(rs.rows[0].get(1).is_null());
}

#[test]
fn joins_inner_and_left_outer() {
    let (catalog, registry) = setup();
    // Inner join: every order matches its customer.
    let rs = run(
        &catalog,
        &registry,
        "select c.custkey, o.totalprice from customer c, orders o where c.custkey = o.custkey",
    );
    assert_eq!(rs.len(), 55); // 1+2+…+10 orders
                              // Left outer join against a selective right side: customers without expensive orders
                              // still appear with NULL.
    let rs = run(
        &catalog,
        &registry,
        "select c.custkey, o.orderkey from customer c \
         left outer join orders o on c.custkey = o.custkey and o.totalprice > 900",
    );
    let nulls = rs.rows.iter().filter(|r| r.get(1).is_null()).count();
    assert_eq!(nulls, 9); // only customer 10 has orders over 900
    assert_eq!(rs.len(), 9 + 10); // 9 null-extended + 10 orders of customer 10
}

#[test]
fn hash_join_and_nested_loop_agree() {
    let (catalog, registry) = setup();
    let plan = parse_and_plan(
        "select c.custkey, o.orderkey from customer c join orders o on c.custkey = o.custkey",
    )
    .unwrap();
    let hash_exec = Executor::with_config(
        Arc::clone(&catalog),
        Arc::new(registry.clone()),
        ExecConfig {
            hash_join_threshold: 0,
            ..ExecConfig::default()
        },
    );
    let nlj_exec = Executor::with_config(
        Arc::clone(&catalog),
        Arc::new(registry.clone()),
        ExecConfig {
            hash_join_threshold: usize::MAX,
            ..ExecConfig::default()
        },
    );
    let a = hash_exec.execute(&plan).unwrap();
    let b = nlj_exec.execute(&plan).unwrap();
    assert_eq!(a.canonical(), b.canonical());
    assert_eq!(hash_exec.stats_snapshot().hash_joins, 1);
    assert_eq!(nlj_exec.stats_snapshot().nested_loop_joins, 1);
}

#[test]
fn order_by_and_limit() {
    let (catalog, registry) = setup();
    let rs = run(
        &catalog,
        &registry,
        "select top 3 custkey from customer order by custkey desc",
    );
    assert_eq!(
        rs.column("custkey").unwrap(),
        vec![Value::Int(10), Value::Int(9), Value::Int(8)]
    );
}

#[test]
fn distinct_projection() {
    let (catalog, registry) = setup();
    let rs = run(
        &catalog,
        &registry,
        "select distinct nationkey from customer",
    );
    assert_eq!(rs.len(), 3);
}

#[test]
fn correlated_scalar_subquery() {
    let (catalog, registry) = setup();
    let rs = run(
        &catalog,
        &registry,
        "select custkey, (select sum(totalprice) from orders where custkey = c.custkey) as total \
         from customer c where custkey <= 3",
    );
    assert_eq!(
        rs.canonical(),
        vec!["(1, 100.0)", "(2, 400.0)", "(3, 900.0)"]
    );
}

#[test]
fn exists_and_in_subqueries() {
    let (catalog, registry) = setup();
    let rs = run(
        &catalog,
        &registry,
        "select custkey from customer c where exists \
         (select orderkey from orders o where o.custkey = c.custkey and o.totalprice > 900)",
    );
    assert_eq!(rs.canonical(), vec!["(10)"]);
    let rs = run(
        &catalog,
        &registry,
        "select orderkey from orders where custkey in (select custkey from customer where custkey < 2)",
    );
    assert_eq!(rs.len(), 1);
}

#[test]
fn index_assisted_selection_is_used() {
    let (catalog, registry) = setup();
    let plan = parse_and_plan("select orderkey from orders where custkey = 7").unwrap();
    let exec = Executor::new(Arc::clone(&catalog), Arc::new(registry.clone()));
    let rs = exec.execute(&plan).unwrap();
    assert_eq!(rs.len(), 7);
    let stats = exec.stats_snapshot();
    assert_eq!(stats.index_lookups, 1);
    assert_eq!(stats.rows_scanned, 0, "index path must not scan the table");
}

#[test]
fn scalar_udf_iterative_invocation() {
    let (catalog, mut registry) = setup();
    registry.register_udf(
        parse_function(
            "create function totalbusiness(int ckey) returns float as \
             begin \
               return select sum(totalprice) from orders where custkey = :ckey; \
             end",
        )
        .unwrap(),
    );
    let plan =
        parse_and_plan("select custkey, totalbusiness(custkey) as tb from customer").unwrap();
    let exec = Executor::new(Arc::clone(&catalog), Arc::new(registry.clone()));
    let rs = exec.execute(&plan).unwrap();
    assert_eq!(rs.len(), 10);
    let tb = rs.column("tb").unwrap();
    assert_eq!(tb[0], Value::Float(100.0));
    assert_eq!(tb[9], Value::Float(10_000.0));
    // Iterative execution: one UDF invocation per customer row.
    assert_eq!(exec.stats_snapshot().udf_invocations, 10);
}

#[test]
fn service_level_udf_with_branching() {
    let (catalog, mut registry) = setup();
    registry.register_udf(
        parse_function(
            "create function service_level(int ckey) returns varchar(10) as \
             begin \
               float totalbusiness; string level; \
               select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
               if (totalbusiness > 5000) level = 'Platinum'; \
               else if (totalbusiness > 1000) level = 'Gold'; \
               else level = 'Regular'; \
               return level; \
             end",
        )
        .unwrap(),
    );
    let rs = run(
        &catalog,
        &registry,
        "select custkey, service_level(custkey) as lvl from customer where custkey in (1, 5, 10)",
    );
    assert_eq!(
        rs.canonical(),
        vec!["(1, 'Regular')", "(10, 'Platinum')", "(5, 'Gold')"]
    );
}

#[test]
fn udf_in_where_clause() {
    let (catalog, mut registry) = setup();
    registry.register_udf(
        parse_function(
            "create function discount(float amount) returns float as \
             begin return amount * 0.15; end",
        )
        .unwrap(),
    );
    let rs = run(
        &catalog,
        &registry,
        "select orderkey from orders where discount(totalprice) > 140",
    );
    // totalprice > 933.3… → only customer 10's orders (1000.0): 10 orders.
    assert_eq!(rs.len(), 10);
}

#[test]
fn udf_with_cursor_loop_interpreted() {
    let (catalog, mut registry) = setup();
    registry.register_udf(
        parse_function(
            "create function order_count_above(int ckey, float threshold) returns int as \
             begin \
               int n = 0; \
               declare c cursor for select totalprice from orders where custkey = :ckey; \
               open c; \
               fetch next from c into @tp; \
               while @@fetch_status = 0 \
               begin \
                 if (@tp > threshold) n = n + 1; \
                 fetch next from c into @tp; \
               end \
               close c; deallocate c; \
               return n; \
             end",
        )
        .unwrap(),
    );
    let rs = run(
        &catalog,
        &registry,
        "select custkey, order_count_above(custkey, 500.0) as n from customer where custkey in (3, 7)",
    );
    assert_eq!(rs.canonical(), vec!["(3, 0)", "(7, 7)"]);
}

#[test]
fn udf_with_while_loop_interpreted() {
    let (catalog, mut registry) = setup();
    registry.register_udf(
        parse_function(
            "create function sum_to(int n) returns int as \
             begin \
               int total = 0; int i = 1; \
               while (i <= n) \
               begin \
                 total = total + i; \
                 i = i + 1; \
               end \
               return total; \
             end",
        )
        .unwrap(),
    );
    let rs = run(&catalog, &registry, "select sum_to(10) as s");
    assert_eq!(rs.rows[0].get(0), &Value::Int(55));
}

#[test]
fn table_valued_udf_execution() {
    let (catalog, mut registry) = setup();
    registry.register_udf(
        parse_function(
            "create function big_orders(float threshold) returns tt table(orderkey int, price float) as \
             begin \
               declare c cursor for select orderkey, totalprice from orders; \
               open c; \
               fetch next from c into @ok, @tp; \
               while @@fetch_status = 0 \
               begin \
                 if (@tp > threshold) insert into tt values (@ok, @tp); \
                 fetch next from c into @ok, @tp; \
               end \
               close c; deallocate c; \
               return tt; \
             end",
        )
        .unwrap(),
    );
    let exec = Executor::new(Arc::clone(&catalog), Arc::new(registry.clone()));
    let rs = exec
        .call_table_udf("big_orders", vec![Value::Float(900.0)])
        .unwrap();
    assert_eq!(rs.len(), 10);
    assert_eq!(rs.schema.names(), vec!["orderkey", "price"]);
}

#[test]
fn nested_udf_calls() {
    let (catalog, mut registry) = setup();
    registry.register_udf(
        parse_function(
            "create function double_it(float x) returns float as begin return x * 2; end",
        )
        .unwrap(),
    );
    registry.register_udf(
        parse_function(
            "create function quadruple(float x) returns float as \
             begin return double_it(double_it(x)); end",
        )
        .unwrap(),
    );
    let rs = run(&catalog, &registry, "select quadruple(2.5) as q");
    assert_eq!(rs.rows[0].get(0), &Value::Float(10.0));
}

#[test]
fn runtime_errors_are_reported() {
    let (catalog, registry) = setup();
    let exec = Executor::new(Arc::clone(&catalog), Arc::new(registry.clone()));
    // Unknown table.
    let plan = parse_and_plan("select x from nosuchtable").unwrap();
    assert_eq!(exec.execute(&plan).unwrap_err().kind(), "catalog");
    // Unknown function.
    let plan = parse_and_plan("select nosuchfn(custkey) from customer").unwrap();
    assert_eq!(exec.execute(&plan).unwrap_err().kind(), "catalog");
    // Unknown column.
    let plan = parse_and_plan("select nosuchcolumn from customer").unwrap();
    assert_eq!(exec.execute(&plan).unwrap_err().kind(), "binding");
    // Division by zero.
    let plan = parse_and_plan("select 1 / 0").unwrap();
    assert_eq!(exec.execute(&plan).unwrap_err().kind(), "execution");
}

#[test]
fn union_and_union_all() {
    let (catalog, registry) = setup();
    let a = parse_and_plan("select nationkey from customer where custkey <= 3").unwrap();
    let b = parse_and_plan("select nationkey from customer where custkey <= 3").unwrap();
    let union_all = decorr_algebra::RelExpr::Union {
        left: Box::new(a.clone()),
        right: Box::new(b.clone()),
        all: true,
    };
    let union_distinct = decorr_algebra::RelExpr::Union {
        left: Box::new(a),
        right: Box::new(b),
        all: false,
    };
    let exec = Executor::new(Arc::clone(&catalog), Arc::new(registry.clone()));
    assert_eq!(exec.execute(&union_all).unwrap().len(), 6);
    assert_eq!(exec.execute(&union_distinct).unwrap().len(), 3);
}
