//! Scalar expression evaluation.

use decorr_algebra::{BinaryOp, ScalarExpr, UnaryOp};
use decorr_common::{Error, Result, Value};

use crate::env::Env;
use crate::executor::Executor;

impl Executor {
    /// Evaluates a scalar expression in the given environment.
    ///
    /// Correlated constructs are handled here: column references fall through to outer
    /// scopes, scalar subqueries and EXISTS/IN subqueries are executed with the current
    /// environment as their outer context, and UDF invocations run through the
    /// interpreter (this is the paper's iterative execution baseline).
    pub fn eval_expr(&self, expr: &ScalarExpr, env: &Env) -> Result<Value> {
        match expr {
            ScalarExpr::Literal(v) => Ok(v.clone()),
            ScalarExpr::Column(c) => env
                .column(c.qualifier.as_deref(), &c.name)
                .or_else(|| env.param(&c.name))
                .ok_or_else(|| Error::Binding(format!("cannot resolve column reference '{c}'"))),
            ScalarExpr::Param(p) => env
                .param(p)
                .or_else(|| env.column(None, p))
                .ok_or_else(|| Error::Binding(format!("unbound parameter ':{p}'"))),
            ScalarExpr::Binary { op, left, right } => self.eval_binary(*op, left, right, env),
            ScalarExpr::Unary { op, expr } => {
                let v = self.eval_expr(expr, env)?;
                match op {
                    UnaryOp::Neg => {
                        if v.is_null() {
                            Ok(Value::Null)
                        } else {
                            Value::Int(0)
                                .sub(&v)
                                .or_else(|_| Ok(Value::Float(-v.as_float()?)))
                        }
                    }
                    UnaryOp::Not => match v.as_bool()? {
                        Some(b) => Ok(Value::Bool(!b)),
                        None => Ok(Value::Null),
                    },
                    UnaryOp::IsNull => Ok(Value::Bool(v.is_null())),
                    UnaryOp::IsNotNull => Ok(Value::Bool(!v.is_null())),
                }
            }
            ScalarExpr::Case {
                branches,
                else_expr,
            } => {
                for (cond, value) in branches {
                    let c = self.eval_expr(cond, env)?;
                    if c.as_bool()? == Some(true) {
                        return self.eval_expr(value, env);
                    }
                }
                match else_expr {
                    Some(e) => self.eval_expr(e, env),
                    None => Ok(Value::Null),
                }
            }
            ScalarExpr::Cast { expr, data_type } => self.eval_expr(expr, env)?.cast(*data_type),
            ScalarExpr::Coalesce(args) => {
                for a in args {
                    let v = self.eval_expr(a, env)?;
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(Value::Null)
            }
            ScalarExpr::ScalarSubquery(q) => {
                self.stats.add_subqueries_executed(1);
                let rs = self.execute_with_env(q, env)?;
                rs.scalar()
            }
            ScalarExpr::Exists(q) => {
                self.stats.add_subqueries_executed(1);
                let rs = self.execute_with_env(q, env)?;
                Ok(Value::Bool(!rs.is_empty()))
            }
            ScalarExpr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                self.stats.add_subqueries_executed(1);
                let needle = self.eval_expr(expr, env)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let rs = self.execute_with_env(subquery, env)?;
                let mut found = false;
                for row in &rs.rows {
                    if let Some(v) = row.values.first() {
                        if needle.sql_eq(v) == Some(true) {
                            found = true;
                            break;
                        }
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            ScalarExpr::UdfCall { name, args } => {
                if self.registry.has_udf(name) {
                    let arg_values: Result<Vec<Value>> =
                        args.iter().map(|a| self.eval_expr(a, env)).collect();
                    self.call_udf(name, arg_values?)
                } else {
                    Err(Error::Catalog(format!("unknown function '{name}'")))
                }
            }
        }
    }

    /// Evaluates a predicate with SQL three-valued logic: NULL (unknown) is treated as
    /// *not satisfied*.
    pub fn eval_predicate(&self, predicate: &ScalarExpr, env: &Env) -> Result<bool> {
        let v = self.eval_expr(predicate, env)?;
        Ok(v.as_bool()? == Some(true))
    }

    fn eval_binary(
        &self,
        op: BinaryOp,
        left: &ScalarExpr,
        right: &ScalarExpr,
        env: &Env,
    ) -> Result<Value> {
        // AND / OR get SQL three-valued logic with short-circuiting.
        if matches!(op, BinaryOp::And | BinaryOp::Or) {
            let l = self.eval_expr(left, env)?.as_bool()?;
            match (op, l) {
                (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
                (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
                _ => {}
            }
            let r = self.eval_expr(right, env)?.as_bool()?;
            let result = match op {
                BinaryOp::And => match (l, r) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                },
                BinaryOp::Or => match (l, r) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                },
                _ => unreachable!(),
            };
            return Ok(result.map(Value::Bool).unwrap_or(Value::Null));
        }
        let l = self.eval_expr(left, env)?;
        let r = self.eval_expr(right, env)?;
        match op {
            BinaryOp::Add => l.add(&r),
            BinaryOp::Sub => l.sub(&r),
            BinaryOp::Mul => l.mul(&r),
            BinaryOp::Div => l.div(&r),
            BinaryOp::Mod => l.modulo(&r),
            BinaryOp::Concat => l.concat(&r),
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => {
                let cmp = l.sql_cmp(&r);
                let result = cmp.map(|ord| match op {
                    BinaryOp::Eq => ord == std::cmp::Ordering::Equal,
                    BinaryOp::NotEq => ord != std::cmp::Ordering::Equal,
                    BinaryOp::Lt => ord == std::cmp::Ordering::Less,
                    BinaryOp::LtEq => ord != std::cmp::Ordering::Greater,
                    BinaryOp::Gt => ord == std::cmp::Ordering::Greater,
                    BinaryOp::GtEq => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                });
                Ok(result.map(Value::Bool).unwrap_or(Value::Null))
            }
            BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
        }
    }
}
