//! Bounded, sharded LRU memo cache for pure-UDF results.
//!
//! Two instances of [`UdfMemo`] participate in the UDF invocation runtime:
//!
//! * the **database memo** — owned by the engine's `Database`, shared across queries,
//!   and invalidated by epoch (function-registry generation + catalog DDL/data
//!   generations) so a redefined UDF or changed data can never serve stale results;
//! * the **per-query dedup cache** — a fresh instance attached to each query's
//!   executor, which deduplicates repeated argument tuples *within* one execution
//!   (the argument-fingerprint dedup of the batched invocation path).
//!
//! Keys are `(normalized name, argument tuple)`; the 64-bit FNV-1a fingerprint over
//! both is the shard/slot index, and the full argument tuple is kept alongside the
//! cached value so a fingerprint collision is detected (and treated as a miss) rather
//! than served. Argument identity is *exact*: `Int(2)` and `Float(2.0)` are distinct
//! keys, because a UDF can observe the argument's type (`return x` must echo the exact
//! value it was given). Floats compare by bit pattern.
//!
//! A capacity of **0 disables the cache entirely** — `get` always misses and `insert`
//! is a no-op — mirroring how `ExecConfig::normalized` clamps nonsensical knob values
//! instead of panicking. Any other capacity is rounded up to shard granularity.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use decorr_common::{FnvHasher, Row, Value};

/// Number of independently locked shards. Power of two; small enough that an empty
/// memo is cheap, large enough that a worker pool rarely contends on one lock.
const SHARDS: usize = 8;

/// Cache-coherence epoch: `(function-registry generation, DDL generation, data
/// generation)`. Any component changing means previously memoized results may be
/// stale — a UDF body was replaced, a table was created/dropped/analyzed, or rows
/// were inserted (a pure UDF may read tables through embedded queries).
pub type MemoEpoch = (u64, u64, u64);

/// A memoized UDF result: scalar UDFs cache the returned [`Value`], table-valued UDFs
/// cache the emitted rows.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoValue {
    Scalar(Value),
    Table(Vec<Row>),
}

/// Fingerprints a UDF invocation: FNV-1a over the normalized name and each argument's
/// type tag + exact payload. Used as the memo slot index and as the dedup identity in
/// the batched invocation path.
pub fn fingerprint_invocation(name: &str, args: &[Value]) -> u64 {
    let mut h = FnvHasher::new();
    h.write_bytes(name.as_bytes());
    for arg in args {
        match arg {
            Value::Null => h.write_u64(0),
            Value::Bool(b) => {
                h.write_u64(1);
                h.write_u64(u64::from(*b));
            }
            Value::Int(i) => {
                h.write_u64(2);
                h.write_u64(*i as u64);
            }
            Value::Float(f) => {
                h.write_u64(3);
                h.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                h.write_u64(4);
                h.write_u64(s.len() as u64);
                h.write_bytes(s.as_bytes());
            }
        }
    }
    h.finish()
}

/// Exact value identity (not SQL equality): types must match, floats compare by bit
/// pattern. SQL's `Int(2) = Float(2.0)` must *not* unify memo keys — the UDF sees the
/// concrete type.
fn value_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

fn args_identical(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| value_identical(x, y))
}

#[derive(Debug)]
struct Entry {
    name: String,
    args: Vec<Value>,
    value: MemoValue,
    tick: u64,
}

#[derive(Debug, Default)]
struct Shard {
    /// Fingerprint → entry. On the (vanishingly rare) collision of two distinct
    /// invocations on one fingerprint, the newer insert wins the slot; `get` compares
    /// the stored arguments so the loser reads a miss, never a wrong value.
    entries: HashMap<u64, Entry>,
    /// LRU order: tick → fingerprint. Ticks are unique within a shard.
    lru: BTreeMap<u64, u64>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, fingerprint: u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&fingerprint) {
            self.lru.remove(&entry.tick);
            entry.tick = tick;
            self.lru.insert(tick, fingerprint);
        }
    }
}

/// Counter snapshot for diagnostics and EXPLAIN ANALYZE (see
/// [`UdfMemo::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdfMemoStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Epoch changes that flushed the cache.
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Configured capacity (0 = disabled).
    pub capacity: u64,
}

/// The bounded, sharded LRU memo cache (see the module docs).
#[derive(Debug)]
pub struct UdfMemo {
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
    per_shard_capacity: usize,
    epoch: Mutex<Option<MemoEpoch>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl UdfMemo {
    /// Creates a memo holding roughly `capacity` entries (rounded up to shard
    /// granularity). `capacity == 0` builds a disabled cache: every lookup misses and
    /// every insert is dropped — "no memo", not "evict on every insert".
    pub fn with_capacity(capacity: usize) -> UdfMemo {
        UdfMemo {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            capacity,
            per_shard_capacity: capacity.div_ceil(SHARDS),
            epoch: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The configured capacity (0 = disabled). `Database::clone` uses this to build a
    /// fresh memo of the same size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").entries.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<Shard> {
        &self.shards[(fingerprint as usize) % SHARDS]
    }

    /// Flushes the cache if `epoch` differs from the epoch of the cached contents.
    /// Called by the engine before attaching the memo to a query's executor.
    pub fn ensure_epoch(&self, epoch: MemoEpoch) {
        let mut current = self.epoch.lock().expect("memo epoch poisoned");
        if *current == Some(epoch) {
            return;
        }
        let stale = current.is_some();
        *current = Some(epoch);
        // Hold the epoch lock across the flush so a racing `ensure_epoch` cannot
        // observe the new epoch with old entries still resident.
        for shard in &self.shards {
            let mut shard = shard.lock().expect("memo shard poisoned");
            shard.entries.clear();
            shard.lru.clear();
        }
        if stale {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every entry (epoch is retained).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("memo shard poisoned");
            shard.entries.clear();
            shard.lru.clear();
        }
    }

    /// Looks up a cached result. `fingerprint` must be
    /// [`fingerprint_invocation`]`(name, args)`; the caller computes it once and
    /// reuses it across `get`/`insert` and the dedup grouping.
    pub fn get(&self, name: &str, fingerprint: u64, args: &[Value]) -> Option<MemoValue> {
        if self.capacity == 0 {
            return None;
        }
        let mut shard = self.shard(fingerprint).lock().expect("memo shard poisoned");
        let found = match shard.entries.get(&fingerprint) {
            Some(entry) if entry.name == name && args_identical(&entry.args, args) => {
                Some(entry.value.clone())
            }
            _ => None,
        };
        match found {
            Some(value) => {
                shard.touch(fingerprint);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`get`](UdfMemo::get), but without touching the hit/miss counters or the
    /// LRU order — used by the batch pre-pass to decide which distinct argument
    /// tuples still need evaluation without skewing the cache diagnostics.
    pub fn peek_contains(&self, name: &str, fingerprint: u64, args: &[Value]) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let shard = self.shard(fingerprint).lock().expect("memo shard poisoned");
        matches!(
            shard.entries.get(&fingerprint),
            Some(entry) if entry.name == name && args_identical(&entry.args, args)
        )
    }

    /// Caches a result, evicting the least-recently-used entry of the target shard
    /// when it is full. No-op when the cache is disabled.
    pub fn insert(&self, name: &str, fingerprint: u64, args: &[Value], value: MemoValue) {
        if self.capacity == 0 {
            return;
        }
        let mut shard = self.shard(fingerprint).lock().expect("memo shard poisoned");
        if let Some(existing) = shard.entries.get_mut(&fingerprint) {
            existing.name = name.to_string();
            existing.args = args.to_vec();
            existing.value = value;
            shard.touch(fingerprint);
            return;
        }
        if shard.entries.len() >= self.per_shard_capacity {
            if let Some((&oldest_tick, &oldest_fp)) = shard.lru.iter().next() {
                shard.lru.remove(&oldest_tick);
                shard.entries.remove(&oldest_fp);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard.lru.insert(tick, fingerprint);
        shard.entries.insert(
            fingerprint,
            Entry {
                name: name.to_string(),
                args: args.to_vec(),
                value,
                tick,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot (cumulative since construction).
    pub fn stats(&self) -> UdfMemoStats {
        UdfMemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.len() as u64,
            capacity: self.capacity as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(v: i64) -> MemoValue {
        MemoValue::Scalar(Value::Int(v))
    }

    #[test]
    fn roundtrip_and_counters() {
        let memo = UdfMemo::with_capacity(64);
        let args = vec![Value::Int(7)];
        let fp = fingerprint_invocation("f", &args);
        assert_eq!(memo.get("f", fp, &args), None);
        memo.insert("f", fp, &args, scalar(14));
        assert_eq!(memo.get("f", fp, &args), Some(scalar(14)));
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn exact_type_identity_not_sql_equality() {
        let memo = UdfMemo::with_capacity(64);
        let int_args = vec![Value::Int(2)];
        let float_args = vec![Value::Float(2.0)];
        let int_fp = fingerprint_invocation("f", &int_args);
        let float_fp = fingerprint_invocation("f", &float_args);
        assert_ne!(
            int_fp, float_fp,
            "type tag must separate Int(2) from Float(2.0)"
        );
        memo.insert("f", int_fp, &int_args, scalar(1));
        assert_eq!(memo.get("f", float_fp, &float_args), None);
        // A colliding fingerprint with different arguments reads a miss, not the
        // stored value.
        assert_eq!(memo.get("f", int_fp, &float_args), None);
        // Same fingerprint, different name: also a miss.
        assert_eq!(memo.get("g", int_fp, &int_args), None);
    }

    #[test]
    fn zero_capacity_disables_without_panicking() {
        let memo = UdfMemo::with_capacity(0);
        assert!(!memo.is_enabled());
        let args = vec![Value::Int(1)];
        let fp = fingerprint_invocation("f", &args);
        memo.insert("f", fp, &args, scalar(1));
        assert_eq!(memo.get("f", fp, &args), None);
        assert!(memo.is_empty());
        let stats = memo.stats();
        assert_eq!(stats.insertions, 0);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // Capacity 8 → one slot per shard; two keys landing in one shard evict LRU.
        let memo = UdfMemo::with_capacity(8);
        // Find three invocations that map to the same shard.
        let mut same_shard = vec![];
        for i in 0..1000 {
            let args = vec![Value::Int(i)];
            let fp = fingerprint_invocation("f", &args);
            if (fp as usize) % SHARDS == 0 {
                same_shard.push((args, fp));
                if same_shard.len() == 3 {
                    break;
                }
            }
        }
        let [(a, fa), (b, fb), (c, fc)] = <[_; 3]>::try_from(same_shard).unwrap();
        memo.insert("f", fa, &a, scalar(1));
        memo.insert("f", fb, &b, scalar(2));
        // `a` was evicted to make room for `b`.
        assert_eq!(memo.get("f", fa, &a), None);
        assert_eq!(memo.get("f", fb, &b), Some(scalar(2)));
        // Touch `b`, insert `c`: `b` is most-recent, so `c` replaces it anyway in a
        // one-slot shard — but after a re-insert of `b`, a get must still hit.
        memo.insert("f", fc, &c, scalar(3));
        assert_eq!(memo.get("f", fb, &b), None);
        assert_eq!(memo.get("f", fc, &c), Some(scalar(3)));
        assert!(memo.stats().evictions >= 2);
    }

    #[test]
    fn epoch_change_flushes_stale_results() {
        let memo = UdfMemo::with_capacity(64);
        let args = vec![Value::Int(1)];
        let fp = fingerprint_invocation("f", &args);
        memo.ensure_epoch((1, 0, 0));
        memo.insert("f", fp, &args, scalar(10));
        // Same epoch: contents survive.
        memo.ensure_epoch((1, 0, 0));
        assert_eq!(memo.get("f", fp, &args), Some(scalar(10)));
        // Registry generation bumped (UDF redefined): stale result unreachable.
        memo.ensure_epoch((2, 0, 0));
        assert_eq!(memo.get("f", fp, &args), None);
        // Data generation bumped: also a flush.
        memo.insert("f", fp, &args, scalar(20));
        memo.ensure_epoch((2, 0, 1));
        assert_eq!(memo.get("f", fp, &args), None);
        assert_eq!(memo.stats().invalidations, 2);
    }

    #[test]
    fn table_values_roundtrip() {
        let memo = UdfMemo::with_capacity(64);
        let args = vec![Value::Str("x".into())];
        let fp = fingerprint_invocation("t", &args);
        let rows = vec![Row::new(vec![Value::Int(1)]), Row::new(vec![Value::Int(2)])];
        memo.insert("t", fp, &args, MemoValue::Table(rows.clone()));
        assert_eq!(memo.get("t", fp, &args), Some(MemoValue::Table(rows)));
    }
}
