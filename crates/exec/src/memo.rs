//! Bounded, sharded LRU memo cache for pure-UDF results.
//!
//! Two instances of [`UdfMemo`] participate in the UDF invocation runtime:
//!
//! * the **engine memo** — owned by the shared `Engine`, shared across sessions and
//!   queries; every entry is stamped with the [`MemoEpoch`] it was computed under
//!   (function-registry generation + catalog DDL generation + per-table or
//!   catalog-wide data version), so a redefined UDF or changed data can never serve
//!   stale results, while concurrent queries pinned to *different* catalog snapshots
//!   each read only entries matching their own epoch;
//! * the **per-query dedup cache** — a fresh instance attached to each query's
//!   executor, which deduplicates repeated argument tuples *within* one execution
//!   (the argument-fingerprint dedup of the batched invocation path). It also carries
//!   the [`reservation`](UdfMemo::reserve) protocol: a racing worker that finds
//!   another worker already evaluating the same argument tuple *waits* for the
//!   published result instead of evaluating the UDF a second time.
//!
//! Keys are `(normalized name, argument tuple)`; the 64-bit FNV-1a fingerprint over
//! both is the shard/slot index, and the full argument tuple is kept alongside the
//! cached value so a fingerprint collision is detected (and treated as a miss) rather
//! than served. Argument identity is *exact*: `Int(2)` and `Float(2.0)` are distinct
//! keys, because a UDF can observe the argument's type (`return x` must echo the exact
//! value it was given). Floats compare by bit pattern.
//!
//! A capacity of **0 disables the cache entirely** — `get` always misses and `insert`
//! is a no-op — mirroring how `ExecConfig::normalized` clamps nonsensical knob values
//! instead of panicking. Any other capacity is rounded up to shard granularity.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::thread::ThreadId;

use decorr_common::{FnvHasher, Row, Value};

/// Number of independently locked shards. Power of two; small enough that an empty
/// memo is cheap, large enough that a worker pool rarely contends on one lock.
const SHARDS: usize = 8;

/// Cache-coherence epoch: `(function-registry generation, DDL generation, data
/// version)`. Any component changing means previously memoized results may be
/// stale — a UDF body was replaced, a table was created/dropped/analyzed, or rows
/// were inserted (a pure UDF may read tables through embedded queries). The data
/// component is the *per-table* data version when the engine can prove the UDF reads
/// exactly one table, and the catalog-wide data generation otherwise.
pub type MemoEpoch = (u64, u64, u64);

/// The epoch used by per-query dedup caches, whose lifetime is one execution: no
/// mutation can interleave, so entries never go stale.
pub const NO_EPOCH: MemoEpoch = (0, 0, 0);

/// A memoized UDF result: scalar UDFs cache the returned [`Value`], table-valued UDFs
/// cache the emitted rows.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoValue {
    Scalar(Value),
    Table(Vec<Row>),
}

/// Fingerprints a UDF invocation: FNV-1a over the normalized name and each argument's
/// type tag + exact payload. Used as the memo slot index and as the dedup identity in
/// the batched invocation path.
pub fn fingerprint_invocation(name: &str, args: &[Value]) -> u64 {
    let mut h = FnvHasher::new();
    h.write_bytes(name.as_bytes());
    for arg in args {
        match arg {
            Value::Null => h.write_u64(0),
            Value::Bool(b) => {
                h.write_u64(1);
                h.write_u64(u64::from(*b));
            }
            Value::Int(i) => {
                h.write_u64(2);
                h.write_u64(*i as u64);
            }
            Value::Float(f) => {
                h.write_u64(3);
                h.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                h.write_u64(4);
                h.write_u64(s.len() as u64);
                h.write_bytes(s.as_bytes());
            }
        }
    }
    h.finish()
}

/// Exact value identity (not SQL equality): types must match, floats compare by bit
/// pattern. SQL's `Int(2) = Float(2.0)` must *not* unify memo keys — the UDF sees the
/// concrete type.
fn value_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

fn args_identical(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| value_identical(x, y))
}

#[derive(Debug)]
struct Entry {
    name: String,
    args: Vec<Value>,
    value: MemoValue,
    epoch: MemoEpoch,
    tick: u64,
}

#[derive(Debug, Default)]
struct Shard {
    /// Fingerprint → entry. On the (vanishingly rare) collision of two distinct
    /// invocations on one fingerprint, the newer insert wins the slot; `get` compares
    /// the stored arguments so the loser reads a miss, never a wrong value.
    entries: HashMap<u64, Entry>,
    /// LRU order: tick → fingerprint. Ticks are unique within a shard.
    lru: BTreeMap<u64, u64>,
    tick: u64,
    /// Fingerprints currently being evaluated under a [`UdfMemo::reserve`]
    /// reservation, and by which thread. Kept outside `entries` so pending markers
    /// can never be evicted by LRU pressure.
    pending: HashMap<u64, ThreadId>,
}

impl Shard {
    fn touch(&mut self, fingerprint: u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&fingerprint) {
            self.lru.remove(&entry.tick);
            entry.tick = tick;
            self.lru.insert(tick, fingerprint);
        }
    }

    fn remove(&mut self, fingerprint: u64) {
        if let Some(entry) = self.entries.remove(&fingerprint) {
            self.lru.remove(&entry.tick);
        }
    }
}

/// One shard plus the condition variable reservation waiters sleep on.
#[derive(Debug, Default)]
struct ShardSlot {
    state: Mutex<Shard>,
    published: Condvar,
}

/// Counter snapshot for diagnostics and EXPLAIN ANALYZE (see
/// [`UdfMemo::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdfMemoStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Stale entries dropped because a lookup's epoch differed from the entry's
    /// (UDF redefined, schema changed, or a table the UDF reads gained rows).
    pub invalidations: u64,
    /// Times a [`reserve`](UdfMemo::reserve) caller slept waiting for a racing
    /// evaluation of the same argument tuple instead of re-evaluating it.
    pub reservation_waits: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Configured capacity (0 = disabled).
    pub capacity: u64,
}

/// The bounded, sharded LRU memo cache (see the module docs).
#[derive(Debug)]
pub struct UdfMemo {
    shards: Vec<ShardSlot>,
    capacity: usize,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    reservation_waits: AtomicU64,
}

/// Outcome of [`UdfMemo::reserve`].
#[derive(Debug)]
pub enum Reservation<'a> {
    /// A valid cached result (possibly published by a racing worker we waited for).
    Hit(MemoValue),
    /// The caller owns the evaluation: compute the result, then
    /// [`publish`](ReservationGuard::publish) it. Dropping the guard without
    /// publishing (evaluation error or panic) wakes waiters so one of them can take
    /// over the reservation.
    Reserved(ReservationGuard<'a>),
    /// The cache is disabled, or this same thread already holds a reservation for
    /// this fingerprint (a self-recursive UDF): evaluate without coordinating.
    Bypass,
}

/// RAII ownership of an in-flight reservation (see [`UdfMemo::reserve`]).
#[derive(Debug)]
pub struct ReservationGuard<'a> {
    memo: &'a UdfMemo,
    fingerprint: u64,
    done: bool,
    took_over: bool,
}

impl ReservationGuard<'_> {
    /// True when this reservation was acquired only after sleeping on a racing
    /// worker's reservation for the same tuple: that worker's result was published
    /// then evicted (or the evaluation was abandoned) before this caller's wake-up
    /// re-check. The caller's evaluation is then a *duplicate* from the counters'
    /// point of view — callers use this to keep invocation counts race-free.
    pub fn took_over(&self) -> bool {
        self.took_over
    }

    /// Publishes the computed result under the reservation and wakes all waiters.
    pub fn publish(mut self, name: &str, args: &[Value], value: MemoValue, epoch: MemoEpoch) {
        self.done = true;
        let slot = self.memo.shard(self.fingerprint);
        let mut shard = slot.state.lock().expect("memo shard poisoned");
        shard.pending.remove(&self.fingerprint);
        self.memo
            .insert_locked(&mut shard, name, self.fingerprint, args, value, epoch);
        slot.published.notify_all();
    }
}

impl Drop for ReservationGuard<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        let slot = self.memo.shard(self.fingerprint);
        let mut shard = slot.state.lock().expect("memo shard poisoned");
        shard.pending.remove(&self.fingerprint);
        slot.published.notify_all();
    }
}

impl UdfMemo {
    /// Creates a memo holding roughly `capacity` entries (rounded up to shard
    /// granularity). `capacity == 0` builds a disabled cache: every lookup misses and
    /// every insert is dropped — "no memo", not "evict on every insert".
    pub fn with_capacity(capacity: usize) -> UdfMemo {
        UdfMemo {
            shards: (0..SHARDS).map(|_| ShardSlot::default()).collect(),
            capacity,
            per_shard_capacity: capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            reservation_waits: AtomicU64::new(0),
        }
    }

    /// The configured capacity (0 = disabled). `Database::clone` uses this to build a
    /// fresh memo of the same size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().expect("memo shard poisoned").entries.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, fingerprint: u64) -> &ShardSlot {
        &self.shards[(fingerprint as usize) % SHARDS]
    }

    /// Drops every entry.
    pub fn clear(&self) {
        for slot in &self.shards {
            let mut shard = slot.state.lock().expect("memo shard poisoned");
            shard.entries.clear();
            shard.lru.clear();
        }
    }

    /// If the slot holds a matching entry stamped with a *different* epoch, drops it
    /// and counts an invalidation. Returns the entry's value when it matches exactly.
    fn lookup_locked(
        &self,
        shard: &mut Shard,
        name: &str,
        fingerprint: u64,
        args: &[Value],
        epoch: MemoEpoch,
    ) -> Option<MemoValue> {
        match shard.entries.get(&fingerprint) {
            Some(entry) if entry.name == name && args_identical(&entry.args, args) => {
                if entry.epoch == epoch {
                    Some(entry.value.clone())
                } else {
                    shard.remove(fingerprint);
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
            _ => None,
        }
    }

    /// Looks up a cached result stamped with exactly `epoch`. `fingerprint` must be
    /// [`fingerprint_invocation`]`(name, args)`; the caller computes it once and
    /// reuses it across `get`/`insert` and the dedup grouping. A matching entry with
    /// a *different* epoch is stale: it is dropped (counted as an invalidation) and
    /// the lookup misses.
    pub fn get(
        &self,
        name: &str,
        fingerprint: u64,
        args: &[Value],
        epoch: MemoEpoch,
    ) -> Option<MemoValue> {
        if self.capacity == 0 {
            return None;
        }
        let mut shard = self
            .shard(fingerprint)
            .state
            .lock()
            .expect("memo shard poisoned");
        match self.lookup_locked(&mut shard, name, fingerprint, args, epoch) {
            Some(value) => {
                shard.touch(fingerprint);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`get`](UdfMemo::get), but without touching the hit/miss counters, the
    /// LRU order, or stale entries — used by the batch pre-pass to decide which
    /// distinct argument tuples still need evaluation without skewing the cache
    /// diagnostics.
    pub fn peek_contains(
        &self,
        name: &str,
        fingerprint: u64,
        args: &[Value],
        epoch: MemoEpoch,
    ) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let shard = self
            .shard(fingerprint)
            .state
            .lock()
            .expect("memo shard poisoned");
        matches!(
            shard.entries.get(&fingerprint),
            Some(entry) if entry.name == name
                && args_identical(&entry.args, args)
                && entry.epoch == epoch
        )
    }

    fn insert_locked(
        &self,
        shard: &mut Shard,
        name: &str,
        fingerprint: u64,
        args: &[Value],
        value: MemoValue,
        epoch: MemoEpoch,
    ) {
        if let Some(existing) = shard.entries.get_mut(&fingerprint) {
            existing.name = name.to_string();
            existing.args = args.to_vec();
            existing.value = value;
            existing.epoch = epoch;
            shard.touch(fingerprint);
            return;
        }
        if shard.entries.len() >= self.per_shard_capacity {
            if let Some((&oldest_tick, &oldest_fp)) = shard.lru.iter().next() {
                shard.lru.remove(&oldest_tick);
                shard.entries.remove(&oldest_fp);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard.lru.insert(tick, fingerprint);
        shard.entries.insert(
            fingerprint,
            Entry {
                name: name.to_string(),
                args: args.to_vec(),
                value,
                epoch,
                tick,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Caches a result stamped with `epoch`, evicting the least-recently-used entry
    /// of the target shard when it is full. No-op when the cache is disabled.
    pub fn insert(
        &self,
        name: &str,
        fingerprint: u64,
        args: &[Value],
        value: MemoValue,
        epoch: MemoEpoch,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut shard = self
            .shard(fingerprint)
            .state
            .lock()
            .expect("memo shard poisoned");
        self.insert_locked(&mut shard, name, fingerprint, args, value, epoch);
    }

    /// Claims the evaluation of one argument tuple, coordinating racing workers:
    ///
    /// * a valid cached entry → [`Reservation::Hit`] (no evaluation needed);
    /// * nobody evaluating → [`Reservation::Reserved`]: the caller computes the
    ///   result and [`publish`](ReservationGuard::publish)es it;
    /// * another *thread* already evaluating the same fingerprint → block until it
    ///   publishes or abandons, then re-check (a publish becomes a `Hit`; an abandon
    ///   lets this caller take over the reservation);
    /// * the cache is disabled, or *this* thread already holds the reservation (a
    ///   self-recursive UDF must not deadlock on itself) → [`Reservation::Bypass`]:
    ///   evaluate without coordinating.
    pub fn reserve(
        &self,
        name: &str,
        fingerprint: u64,
        args: &[Value],
        epoch: MemoEpoch,
    ) -> Reservation<'_> {
        if self.capacity == 0 {
            return Reservation::Bypass;
        }
        let slot = self.shard(fingerprint);
        let mut shard: MutexGuard<'_, Shard> = slot.state.lock().expect("memo shard poisoned");
        let mut waited = false;
        loop {
            if let Some(value) = self.lookup_locked(&mut shard, name, fingerprint, args, epoch) {
                shard.touch(fingerprint);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Reservation::Hit(value);
            }
            match shard.pending.get(&fingerprint) {
                Some(owner) if *owner == std::thread::current().id() => {
                    return Reservation::Bypass;
                }
                Some(_) => {
                    self.reservation_waits.fetch_add(1, Ordering::Relaxed);
                    waited = true;
                    shard = slot.published.wait(shard).expect("memo shard poisoned");
                }
                None => {
                    shard
                        .pending
                        .insert(fingerprint, std::thread::current().id());
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Reservation::Reserved(ReservationGuard {
                        memo: self,
                        fingerprint,
                        done: false,
                        took_over: waited,
                    });
                }
            }
        }
    }

    /// Counter snapshot (cumulative since construction).
    pub fn stats(&self) -> UdfMemoStats {
        UdfMemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            reservation_waits: self.reservation_waits.load(Ordering::Relaxed),
            entries: self.len() as u64,
            capacity: self.capacity as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(v: i64) -> MemoValue {
        MemoValue::Scalar(Value::Int(v))
    }

    #[test]
    fn roundtrip_and_counters() {
        let memo = UdfMemo::with_capacity(64);
        let args = vec![Value::Int(7)];
        let fp = fingerprint_invocation("f", &args);
        assert_eq!(memo.get("f", fp, &args, NO_EPOCH), None);
        memo.insert("f", fp, &args, scalar(14), NO_EPOCH);
        assert_eq!(memo.get("f", fp, &args, NO_EPOCH), Some(scalar(14)));
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn exact_type_identity_not_sql_equality() {
        let memo = UdfMemo::with_capacity(64);
        let int_args = vec![Value::Int(2)];
        let float_args = vec![Value::Float(2.0)];
        let int_fp = fingerprint_invocation("f", &int_args);
        let float_fp = fingerprint_invocation("f", &float_args);
        assert_ne!(
            int_fp, float_fp,
            "type tag must separate Int(2) from Float(2.0)"
        );
        memo.insert("f", int_fp, &int_args, scalar(1), NO_EPOCH);
        assert_eq!(memo.get("f", float_fp, &float_args, NO_EPOCH), None);
        // A colliding fingerprint with different arguments reads a miss, not the
        // stored value.
        assert_eq!(memo.get("f", int_fp, &float_args, NO_EPOCH), None);
        // Same fingerprint, different name: also a miss.
        assert_eq!(memo.get("g", int_fp, &int_args, NO_EPOCH), None);
    }

    #[test]
    fn zero_capacity_disables_without_panicking() {
        let memo = UdfMemo::with_capacity(0);
        assert!(!memo.is_enabled());
        let args = vec![Value::Int(1)];
        let fp = fingerprint_invocation("f", &args);
        memo.insert("f", fp, &args, scalar(1), NO_EPOCH);
        assert_eq!(memo.get("f", fp, &args, NO_EPOCH), None);
        assert!(memo.is_empty());
        assert!(matches!(
            memo.reserve("f", fp, &args, NO_EPOCH),
            Reservation::Bypass
        ));
        let stats = memo.stats();
        assert_eq!(stats.insertions, 0);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // Capacity 8 → one slot per shard; two keys landing in one shard evict LRU.
        let memo = UdfMemo::with_capacity(8);
        // Find three invocations that map to the same shard.
        let mut same_shard = vec![];
        for i in 0..1000 {
            let args = vec![Value::Int(i)];
            let fp = fingerprint_invocation("f", &args);
            if (fp as usize) % SHARDS == 0 {
                same_shard.push((args, fp));
                if same_shard.len() == 3 {
                    break;
                }
            }
        }
        let [(a, fa), (b, fb), (c, fc)] = <[_; 3]>::try_from(same_shard).unwrap();
        memo.insert("f", fa, &a, scalar(1), NO_EPOCH);
        memo.insert("f", fb, &b, scalar(2), NO_EPOCH);
        // `a` was evicted to make room for `b`.
        assert_eq!(memo.get("f", fa, &a, NO_EPOCH), None);
        assert_eq!(memo.get("f", fb, &b, NO_EPOCH), Some(scalar(2)));
        // Touch `b`, insert `c`: `b` is most-recent, so `c` replaces it anyway in a
        // one-slot shard — but after a re-insert of `b`, a get must still hit.
        memo.insert("f", fc, &c, scalar(3), NO_EPOCH);
        assert_eq!(memo.get("f", fb, &b, NO_EPOCH), None);
        assert_eq!(memo.get("f", fc, &c, NO_EPOCH), Some(scalar(3)));
        assert!(memo.stats().evictions >= 2);
    }

    #[test]
    fn epoch_mismatch_invalidates_stale_entries() {
        let memo = UdfMemo::with_capacity(64);
        let args = vec![Value::Int(1)];
        let fp = fingerprint_invocation("f", &args);
        memo.insert("f", fp, &args, scalar(10), (1, 0, 0));
        // Same epoch: served.
        assert_eq!(memo.get("f", fp, &args, (1, 0, 0)), Some(scalar(10)));
        // Registry generation bumped (UDF redefined): stale entry dropped.
        assert_eq!(memo.get("f", fp, &args, (2, 0, 0)), None);
        assert_eq!(memo.stats().invalidations, 1);
        assert!(memo.is_empty(), "stale entry must be evicted, not retained");
        // Data version bumped: same.
        memo.insert("f", fp, &args, scalar(20), (2, 0, 0));
        assert_eq!(memo.get("f", fp, &args, (2, 0, 1)), None);
        assert_eq!(memo.stats().invalidations, 2);
        // Entries under *different* epochs for different UDFs coexist: stamping is
        // per entry, not a global flush.
        let g_args = vec![Value::Int(2)];
        let g_fp = fingerprint_invocation("g", &g_args);
        memo.insert("f", fp, &args, scalar(30), (2, 0, 1));
        memo.insert("g", g_fp, &g_args, scalar(40), (2, 0, 7));
        assert_eq!(memo.get("f", fp, &args, (2, 0, 1)), Some(scalar(30)));
        assert_eq!(memo.get("g", g_fp, &g_args, (2, 0, 7)), Some(scalar(40)));
    }

    #[test]
    fn table_values_roundtrip() {
        let memo = UdfMemo::with_capacity(64);
        let args = vec![Value::Str("x".into())];
        let fp = fingerprint_invocation("t", &args);
        let rows = vec![Row::new(vec![Value::Int(1)]), Row::new(vec![Value::Int(2)])];
        memo.insert("t", fp, &args, MemoValue::Table(rows.clone()), NO_EPOCH);
        assert_eq!(
            memo.get("t", fp, &args, NO_EPOCH),
            Some(MemoValue::Table(rows))
        );
    }

    #[test]
    fn reservation_hit_miss_and_publish() {
        let memo = UdfMemo::with_capacity(64);
        let args = vec![Value::Int(5)];
        let fp = fingerprint_invocation("f", &args);
        // First reservation claims the evaluation.
        let guard = match memo.reserve("f", fp, &args, NO_EPOCH) {
            Reservation::Reserved(g) => g,
            other => panic!("expected Reserved, got {other:?}"),
        };
        guard.publish("f", &args, scalar(10), NO_EPOCH);
        // After publish, a second reservation is a Hit.
        match memo.reserve("f", fp, &args, NO_EPOCH) {
            Reservation::Hit(v) => assert_eq!(v, scalar(10)),
            other => panic!("expected Hit, got {other:?}"),
        }
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn abandoned_reservation_lets_the_next_caller_take_over() {
        let memo = UdfMemo::with_capacity(64);
        let args = vec![Value::Int(5)];
        let fp = fingerprint_invocation("f", &args);
        {
            let _guard = match memo.reserve("f", fp, &args, NO_EPOCH) {
                Reservation::Reserved(g) => g,
                other => panic!("expected Reserved, got {other:?}"),
            };
            // Dropped without publish: evaluation failed.
        }
        match memo.reserve("f", fp, &args, NO_EPOCH) {
            Reservation::Reserved(g) => assert!(
                !g.took_over(),
                "same-thread re-reserve never waited, so it did not take over"
            ),
            other => panic!("expected Reserved, got {other:?}"),
        };
    }

    /// A waiter that sleeps on another worker's reservation and wakes to find it
    /// gone (abandoned here; evicted-after-publish is the other path) takes the
    /// reservation over — and the guard reports it, so the interpreter can keep the
    /// duplicate evaluation out of the invocation counters.
    #[test]
    fn waiter_that_takes_over_reports_it() {
        use std::sync::Arc;
        let memo = Arc::new(UdfMemo::with_capacity(64));
        let args = vec![Value::Int(11)];
        let fp = fingerprint_invocation("f", &args);
        let guard = match memo.reserve("f", fp, &args, NO_EPOCH) {
            Reservation::Reserved(g) => g,
            other => panic!("expected Reserved, got {other:?}"),
        };
        assert!(!guard.took_over(), "the uncontended winner never waited");
        let waiter = {
            let memo = Arc::clone(&memo);
            let args = args.clone();
            std::thread::spawn(move || match memo.reserve("f", fp, &args, NO_EPOCH) {
                Reservation::Reserved(g) => {
                    let took_over = g.took_over();
                    g.publish("f", &args, scalar(22), NO_EPOCH);
                    took_over
                }
                other => panic!("expected to take over the reservation, got {other:?}"),
            })
        };
        // Give the waiter time to block on the condvar, then abandon the
        // reservation: the waiter must wake, take over, and know it did.
        std::thread::sleep(std::time::Duration::from_millis(100));
        drop(guard);
        assert!(
            waiter.join().unwrap(),
            "a waiter that slept through an abandon must report took_over"
        );
        assert_eq!(memo.get("f", fp, &args, NO_EPOCH), Some(scalar(22)));
    }

    #[test]
    fn reentrant_reservation_bypasses_instead_of_deadlocking() {
        let memo = UdfMemo::with_capacity(64);
        let args = vec![Value::Int(5)];
        let fp = fingerprint_invocation("f", &args);
        let _guard = match memo.reserve("f", fp, &args, NO_EPOCH) {
            Reservation::Reserved(g) => g,
            other => panic!("expected Reserved, got {other:?}"),
        };
        // Same thread, same fingerprint (self-recursive UDF): must not block.
        assert!(matches!(
            memo.reserve("f", fp, &args, NO_EPOCH),
            Reservation::Bypass
        ));
    }

    #[test]
    fn racing_reservations_coalesce_onto_one_evaluation() {
        use std::sync::Arc;
        let memo = Arc::new(UdfMemo::with_capacity(64));
        let args = vec![Value::Int(9)];
        let fp = fingerprint_invocation("f", &args);
        let guard = match memo.reserve("f", fp, &args, NO_EPOCH) {
            Reservation::Reserved(g) => g,
            other => panic!("expected Reserved, got {other:?}"),
        };
        // Spawn waiters that race on the reserved fingerprint; they must block until
        // the publish below and then all observe the published value.
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let memo = Arc::clone(&memo);
                let args = args.clone();
                std::thread::spawn(move || match memo.reserve("f", fp, &args, NO_EPOCH) {
                    Reservation::Hit(v) => v,
                    other => panic!("waiter expected Hit, got {other:?}"),
                })
            })
            .collect();
        // Give the waiters a moment to actually park on the condvar.
        std::thread::sleep(std::time::Duration::from_millis(20));
        guard.publish("f", &args, scalar(81), NO_EPOCH);
        for w in waiters {
            assert_eq!(w.join().unwrap(), scalar(81));
        }
        let stats = memo.stats();
        assert_eq!(stats.insertions, 1, "exactly one evaluation published");
        assert_eq!(stats.hits, 4);
        assert!(stats.reservation_waits >= 1);
    }
}
