//! The morsel-driven worker pool.
//!
//! Parallel operators split their input into fixed-size *morsels* (row ranges) that a
//! pool of `std::thread` workers pulls from a shared atomic queue — the classic
//! morsel-driven scheduling of Leis et al., built on nothing but `std::thread::scope`
//! and `std::sync::atomic` (the workspace is dependency-free).
//!
//! Determinism contract: workers may *process* morsels in any interleaving, but every
//! driver returns its per-task outputs **sorted by task index** (the sort-stabilized
//! merge), so a parallel run assembles byte-identical output to the serial row-at-a-time
//! path. Operators whose result depends on accumulation order (hash aggregation)
//! additionally partition by group-key hash so each group's accumulation chain stays in
//! global row order — see `Executor::execute_aggregate`.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use decorr_common::{Error, Result};

use crate::executor::Executor;
use crate::stats::OperatorTrace;

/// One worker's contribution: its `(task index, task output)` pairs plus the number of
/// input rows it processed (for the trace's per-worker spread).
type WorkerOutput<T> = (Vec<(usize, Result<T>)>, u64);

/// Splits `len` rows into contiguous ranges of at most `morsel_size` rows.
///
/// Edge cases: zero rows produce zero morsels; a table smaller than one morsel produces
/// a single morsel covering it; `morsel_size == 0` is treated as 1 so the split always
/// terminates.
pub fn morsel_ranges(len: usize, morsel_size: usize) -> Vec<Range<usize>> {
    let step = morsel_size.max(1);
    let mut out = Vec::with_capacity(len.div_ceil(step));
    let mut start = 0;
    while start < len {
        let end = (start + step).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

impl<'a> Executor<'a> {
    /// True when an operator over `len` input rows should take the parallel path:
    /// parallelism is enabled and the input spans more than one morsel. With
    /// `parallelism == 1` every operator stays on the serial path, byte for byte.
    pub(crate) fn should_parallelize(&self, len: usize) -> bool {
        self.config.parallelism > 1 && len > self.config.morsel_size
    }

    /// Runs `tasks` independent work items on the worker pool and returns their outputs
    /// **in task order**. Each worker evaluates through a serial view of this executor
    /// (shared catalog/registry/stats, `parallelism = 1`), so nested plan execution
    /// inside a task never spawns a second pool. Records an [`OperatorTrace`] entry.
    ///
    /// `task_rows` reports the input-row weight of a task for the trace's per-worker
    /// spread; `f` receives the worker's serial executor view and the task index.
    pub(crate) fn run_pool<T, F>(
        &self,
        operator: &str,
        tasks: usize,
        task_rows: &(dyn Fn(usize) -> u64 + Sync),
        f: F,
    ) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&Executor<'a>, usize) -> Result<T> + Sync,
    {
        if tasks == 0 {
            return Ok(vec![]);
        }
        let workers = self.config.parallelism.max(1).min(tasks);
        let queue = AtomicUsize::new(0);
        let start = Instant::now();
        let mut panic_message: Option<String> = None;
        let per_worker: Vec<WorkerOutput<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let view = self.worker_view();
                        let mut out = vec![];
                        let mut rows = 0u64;
                        loop {
                            let idx = queue.fetch_add(1, Ordering::Relaxed);
                            if idx >= tasks {
                                break;
                            }
                            rows += task_rows(idx);
                            out.push((idx, f(&view, idx)));
                        }
                        (out, rows)
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(output) => Some(output),
                    Err(panic) => {
                        let msg = panic
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "worker panicked".to_string());
                        panic_message.get_or_insert(msg);
                        None
                    }
                })
                .collect()
        });
        // A panicked worker may have claimed task indexes it never produced, so the
        // slot merge below cannot run — fail the whole operator instead.
        if let Some(msg) = panic_message {
            return Err(Error::Execution(format!("morsel worker panicked: {msg}")));
        }
        let duration = start.elapsed();
        let rows_per_worker: Vec<u64> = per_worker.iter().map(|(_, rows)| *rows).collect();
        // Sort-stabilized merge: outputs reassemble in task order regardless of which
        // worker ran which task, and errors surface deterministically (lowest task
        // index wins).
        let mut slots: Vec<Option<Result<T>>> = (0..tasks).map(|_| None).collect();
        for (results, _) in per_worker {
            for (idx, result) in results {
                slots[idx] = Some(result);
            }
        }
        self.stats.add_morsels_dispatched(tasks as u64);
        self.stats.add_parallel_operators(1);
        self.trace.record(OperatorTrace {
            operator: operator.to_string(),
            morsels: tasks,
            workers,
            rows_per_worker,
            duration,
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every task index is produced exactly once"))
            .collect()
    }

    /// Morsel-driven map: splits `len` rows into morsels and runs `f` per morsel range,
    /// returning the per-morsel outputs in morsel order.
    ///
    /// `ExecConfig::morsel_size` is the *floor*: large inputs use proportionally larger
    /// morsels so the queue never holds more than a few tasks per worker (per-morsel
    /// dispatch overhead stays bounded), while still leaving enough tasks for the pool
    /// to balance skew. The split depends only on `len` and the configuration — never
    /// on scheduling — so the morsel-order merge stays deterministic.
    pub(crate) fn run_morsels<T, F>(&self, operator: &str, len: usize, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&Executor<'a>, Range<usize>) -> Result<T> + Sync,
    {
        let tasks_per_worker = 4;
        let effective = self
            .config
            .morsel_size
            .max(len.div_ceil(self.config.parallelism.max(1) * tasks_per_worker));
        let ranges = morsel_ranges(len, effective);
        let rows_of = |idx: usize| ranges[idx].len() as u64;
        self.run_pool(operator, ranges.len(), &rows_of, |view, idx| {
            f(view, ranges[idx].clone())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_produces_no_morsels() {
        assert!(morsel_ranges(0, 1024).is_empty());
    }

    #[test]
    fn input_smaller_than_one_morsel_is_a_single_range() {
        assert_eq!(morsel_ranges(7, 1024), vec![0..7]);
    }

    #[test]
    fn exact_multiple_splits_cleanly() {
        assert_eq!(morsel_ranges(8, 4), vec![0..4, 4..8]);
    }

    #[test]
    fn remainder_goes_into_a_short_tail_morsel() {
        assert_eq!(morsel_ranges(10, 4), vec![0..4, 4..8, 8..10]);
    }

    #[test]
    fn zero_morsel_size_is_clamped_not_divergent() {
        assert_eq!(morsel_ranges(3, 0), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn ranges_cover_input_without_gaps_or_overlap() {
        for (len, size) in [(1, 1), (1000, 7), (4096, 1024), (5, 100)] {
            let ranges = morsel_ranges(len, size);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "gap before {r:?}");
                assert!(r.end > r.start, "empty morsel {r:?}");
                assert!(r.len() <= size.max(1));
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }
}
