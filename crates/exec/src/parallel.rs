//! The persistent morsel-driven worker pool.
//!
//! Parallel operators split their input into fixed-size *morsels* (row ranges) that a
//! pool of long-lived `std::thread` workers pulls from a shared atomic queue — the
//! classic morsel-driven scheduling of Leis et al., built on nothing but `std::sync`
//! primitives (the workspace is dependency-free and forbids `unsafe`).
//!
//! Unlike the first parallel engine (which re-spawned scoped threads for every
//! operator), the [`WorkerPool`] here is *persistent*: its workers park on a condvar
//! between batches and are reused across operators **and** across queries. The engine
//! owns one pool per [`Database`](../../decorr_engine/struct.Database.html) and attaches
//! it to every executor; a standalone executor lazily creates its own pool, so the pool
//! is the only dispatch path. Thread spawns are therefore a pool-lifecycle event
//! (`ExecStats::pool_spawns`), not a per-operator cost.
//!
//! Because the workers are long-lived, batch jobs must be `'static`: operators package
//! an owned job context (`Arc`'d input rows, cloned expressions and environments, and a
//! serial [`Executor`] view that shares the catalog/registry `Arc`s) instead of
//! borrowing from the submitting stack frame.
//!
//! Determinism contract: workers may *process* morsels in any interleaving, but every
//! driver returns its per-task outputs **sorted by task index** (the sort-stabilized
//! merge), so a parallel run assembles byte-identical output to the serial row-at-a-time
//! path. Operators whose result depends on accumulation order (hash aggregation)
//! additionally partition by group-key hash so each group's accumulation chain stays in
//! global row order — see `Executor::execute_aggregate`.
//!
//! Panic safety: a task that panics (e.g. a UDF hitting a library panic mid-morsel) is
//! caught *per task* inside the worker loop. The batch reports the first panic message
//! to its submitter — which surfaces it as an [`Error::Execution`] on that query — and
//! the worker thread survives, so the pool stays usable for the next batch.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use decorr_common::{Error, Result, Row};

use crate::executor::Executor;
use crate::stats::OperatorTrace;

/// Output-row accounting for batch task results: every type a parallel operator
/// returns per task reports how many rows (or build entries / groups, for
/// non-row-producing stages) it carries, so the per-operator trace can expose actual
/// output cardinalities next to the input spread.
pub(crate) trait OutputRows {
    fn output_rows(&self) -> u64;
}

impl OutputRows for Vec<Row> {
    fn output_rows(&self) -> u64 {
        self.len() as u64
    }
}

impl OutputRows for std::collections::HashMap<Vec<decorr_common::value::GroupKey>, Vec<usize>> {
    fn output_rows(&self) -> u64 {
        self.values().map(|v| v.len() as u64).sum()
    }
}

/// Splits `len` rows into contiguous ranges of at most `morsel_size` rows.
///
/// Edge cases: zero rows produce zero morsels; a table smaller than one morsel produces
/// a single morsel covering it; `morsel_size == 0` is treated as 1 so the split always
/// terminates.
pub fn morsel_ranges(len: usize, morsel_size: usize) -> Vec<Range<usize>> {
    let step = morsel_size.max(1);
    let mut out = Vec::with_capacity(len.div_ceil(step));
    let mut start = 0;
    while start < len {
        let end = (start + step).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// A batch job: invoked as `job(participant_slot, task_index)` once per task.
type BatchJob = Box<dyn Fn(usize, usize) + Send + Sync>;

/// One submitted batch of independent tasks. Workers claim task indexes from the
/// shared `next` counter (morsel scheduling); the submitter blocks until `finished`
/// reaches `tasks`.
struct Batch {
    job: BatchJob,
    tasks: usize,
    /// Participant slots this batch may hand out (bounds the workers it occupies).
    max_workers: usize,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Participant slots handed out so far (may overshoot `max_workers`; the overshoot
    /// is never used).
    joined: AtomicUsize,
    /// Completed tasks. A panicked task still counts — completion must never hang.
    finished: AtomicUsize,
    /// First panic message observed while running a task of this batch.
    panic: Mutex<Option<String>>,
}

impl Batch {
    fn fully_claimed(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.tasks
    }

    fn done(&self) -> bool {
        self.finished.load(Ordering::Relaxed) >= self.tasks
    }
}

/// Queue state shared between submitters and workers, guarded by one mutex.
#[derive(Default)]
struct PoolQueue {
    batches: VecDeque<Arc<Batch>>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Wakes parked workers when a batch arrives or the pool shuts down.
    work_ready: Condvar,
    /// Wakes batch submitters when a batch's last task finishes.
    batch_done: Condvar,
}

/// Snapshot of a pool's lifecycle counters (for benches and EXPLAIN-style reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerPoolStats {
    /// Live worker threads.
    pub workers: usize,
    /// Threads spawned over the pool's lifetime (grows only when the pool grows).
    pub threads_spawned: u64,
    /// Batches executed over the pool's lifetime.
    pub batches_run: u64,
}

/// A persistent, condvar-backed worker pool.
///
/// Workers are spawned eagerly by [`WorkerPool::new`] and on demand by
/// [`WorkerPool::ensure_workers`]; they park between batches and are joined when the
/// pool is dropped. Multiple submitters may run batches concurrently — batches queue
/// FIFO and each is bounded to its own `max_workers` participant slots.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Live worker handles, joined on drop.
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads_spawned: AtomicU64,
    batches_run: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.worker_count())
            .field("threads_spawned", &self.threads_spawned())
            .field("batches_run", &self.batches_run.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for WorkerPool {
    /// An empty pool; workers are spawned on first use by [`WorkerPool::ensure_workers`].
    fn default() -> Self {
        WorkerPool::new(0)
    }
}

impl WorkerPool {
    /// A pool with `workers` threads spawned eagerly (warm-up happens here, not on the
    /// query path). `0` defers every spawn to [`WorkerPool::ensure_workers`].
    pub fn new(workers: usize) -> WorkerPool {
        let pool = WorkerPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(PoolQueue::default()),
                work_ready: Condvar::new(),
                batch_done: Condvar::new(),
            }),
            workers: Mutex::new(vec![]),
            threads_spawned: AtomicU64::new(0),
            batches_run: AtomicU64::new(0),
        };
        pool.ensure_workers(workers);
        pool
    }

    /// Live worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.lock().expect("worker list poisoned").len()
    }

    /// Threads spawned over the pool's lifetime.
    pub fn threads_spawned(&self) -> u64 {
        self.threads_spawned.load(Ordering::Relaxed)
    }

    /// Lifecycle counter snapshot.
    pub fn stats(&self) -> WorkerPoolStats {
        WorkerPoolStats {
            workers: self.worker_count(),
            threads_spawned: self.threads_spawned(),
            batches_run: self.batches_run.load(Ordering::Relaxed),
        }
    }

    /// Grows the pool to at least `target` workers and returns how many threads were
    /// spawned (0 once the pool is warm — the per-query steady state).
    pub fn ensure_workers(&self, target: usize) -> usize {
        let mut workers = self.workers.lock().expect("worker list poisoned");
        let missing = target.saturating_sub(workers.len());
        for _ in 0..missing {
            let shared = Arc::clone(&self.shared);
            self.threads_spawned.fetch_add(1, Ordering::Relaxed);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        missing
    }

    /// Runs `tasks` independent tasks on at most `max_workers` pool workers, blocking
    /// until every task has finished. Task indexes are claimed from a shared counter,
    /// so workers self-balance across uneven tasks. Returns the first panic message if
    /// any task panicked; the pool itself stays healthy either way.
    pub fn run_batch(
        &self,
        max_workers: usize,
        tasks: usize,
        job: BatchJob,
    ) -> std::result::Result<(), String> {
        if tasks == 0 {
            return Ok(());
        }
        self.ensure_workers(max_workers.max(1).min(tasks));
        self.batches_run.fetch_add(1, Ordering::Relaxed);
        let batch = Arc::new(Batch {
            job,
            tasks,
            max_workers: max_workers.max(1),
            next: AtomicUsize::new(0),
            joined: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.batches.push_back(Arc::clone(&batch));
            self.shared.work_ready.notify_all();
        }
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        while !batch.done() {
            queue = self
                .shared
                .batch_done
                .wait(queue)
                .expect("pool queue poisoned");
        }
        // Fully-claimed batches are usually pruned by the workers; make sure ours is
        // gone before returning (it holds the job closure and its captured context).
        queue.batches.retain(|b| !Arc::ptr_eq(b, &batch));
        drop(queue);
        let panic = batch.panic.lock().expect("panic slot poisoned").take();
        match panic {
            Some(message) => Err(message),
            None => Ok(()),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        let handles = std::mem::take(&mut *self.workers.lock().expect("worker list poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// A parked worker's life: claim a participant slot in a pending batch, drain tasks
/// from it, repeat; park when no batch needs hands; exit on shutdown.
fn worker_loop(shared: &PoolShared) {
    loop {
        let (batch, slot) = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if queue.shutdown {
                    return;
                }
                if let Some(claim) = claim_slot(&mut queue) {
                    break claim;
                }
                queue = shared.work_ready.wait(queue).expect("pool queue poisoned");
            }
        };
        run_tasks(shared, &batch, slot);
    }
}

/// Finds the first batch with unclaimed tasks and a free participant slot. Batches
/// whose tasks are all claimed are pruned so the queue never grows unboundedly.
fn claim_slot(queue: &mut PoolQueue) -> Option<(Arc<Batch>, usize)> {
    queue.batches.retain(|batch| !batch.fully_claimed());
    for batch in &queue.batches {
        let slot = batch.joined.fetch_add(1, Ordering::Relaxed);
        if slot < batch.max_workers {
            return Some((Arc::clone(batch), slot));
        }
    }
    None
}

/// Drains tasks from a batch, catching panics per task so a poisoned UDF cannot kill
/// the worker thread or wedge the batch.
fn run_tasks(shared: &PoolShared, batch: &Batch, slot: usize) {
    loop {
        let idx = batch.next.fetch_add(1, Ordering::Relaxed);
        if idx >= batch.tasks {
            return;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (batch.job)(slot, idx))) {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "worker panicked".to_string());
            batch
                .panic
                .lock()
                .expect("panic slot poisoned")
                .get_or_insert(message);
        }
        let done = batch.finished.fetch_add(1, Ordering::Relaxed) + 1;
        if done >= batch.tasks {
            // Take the queue lock before notifying so the wake-up cannot slip between
            // a submitter's `done()` check and its wait.
            let _guard = shared.queue.lock().expect("pool queue poisoned");
            shared.batch_done.notify_all();
        }
    }
}

/// One participant's contribution: its `(task index, task output)` pairs plus the
/// number of input rows it processed (for the trace's per-worker spread).
type WorkerOutput<T> = (Vec<(usize, Result<T>)>, u64);

impl Executor {
    /// True when an operator over `len` input rows should take the parallel path:
    /// parallelism is enabled and the input spans more than one morsel. With
    /// `parallelism == 1` every operator stays on the serial path, byte for byte.
    pub(crate) fn should_parallelize(&self, len: usize) -> bool {
        self.config.parallelism > 1 && len > self.config.morsel_size.max(1)
    }

    /// Runs `tasks` independent work items on the worker pool and returns their outputs
    /// **in task order**. Workers evaluate through a shared serial view of this
    /// executor (same catalog/registry/stats `Arc`s, `parallelism = 1`), so nested plan
    /// execution inside a task never re-enters the pool. Records an [`OperatorTrace`]
    /// entry; `pipelined` is the number of plan operators fused into this dispatch (0
    /// for a single-operator dispatch).
    ///
    /// `task_rows` reports the input-row weight of a task for the trace's per-worker
    /// spread; `f` receives the shared serial executor view and the task index. Both
    /// must be `'static`: the pool workers outlive this call's stack frame, so the job
    /// context is owned, not borrowed.
    pub(crate) fn run_pool<T, F>(
        &self,
        operator: &str,
        pipelined: usize,
        tasks: usize,
        task_rows: impl Fn(usize) -> u64 + Send + Sync + 'static,
        f: F,
    ) -> Result<Vec<T>>
    where
        T: Send + OutputRows + 'static,
        F: Fn(&Executor, usize) -> Result<T> + Send + Sync + 'static,
    {
        if tasks == 0 {
            return Ok(vec![]);
        }
        let workers = self.config.parallelism.max(1).min(tasks);
        let pool = self.worker_pool();
        let spawned = pool.ensure_workers(workers);
        self.stats.add_pool_spawns(spawned as u64);
        let start = Instant::now();
        // Per-participant output slots. Each participant locks only its own slot, so
        // the mutexes are uncontended; the submitter drains them after the batch
        // completes (slot-mutex release/acquire publishes the workers' writes).
        let slots: Arc<Vec<Mutex<WorkerOutput<T>>>> =
            Arc::new((0..workers).map(|_| Mutex::new((vec![], 0))).collect());
        let view = Arc::new(self.worker_view());
        let job: BatchJob = {
            let slots = Arc::clone(&slots);
            Box::new(move |slot, idx| {
                let rows = task_rows(idx);
                let result = f(&view, idx);
                let mut out = slots[slot].lock().expect("worker output slot poisoned");
                out.0.push((idx, result));
                out.1 += rows;
            })
        };
        let outcome = pool.run_batch(workers, tasks, job);
        let duration = start.elapsed();
        // A panicked task produced no output, so the slot merge below cannot run —
        // fail the whole operator instead. The pool itself stays usable.
        if let Err(message) = outcome {
            return Err(Error::Execution(format!(
                "morsel worker panicked: {message}"
            )));
        }
        let per_worker: Vec<WorkerOutput<T>> = slots
            .iter()
            .map(|slot| std::mem::take(&mut *slot.lock().expect("worker output slot poisoned")))
            .collect();
        let rows_per_worker: Vec<u64> = per_worker.iter().map(|(_, rows)| *rows).collect();
        // Sort-stabilized merge: outputs reassemble in task order regardless of which
        // worker ran which task, and errors surface deterministically (lowest task
        // index wins).
        let mut merged: Vec<Option<Result<T>>> = (0..tasks).map(|_| None).collect();
        for (results, _) in per_worker {
            for (idx, result) in results {
                merged[idx] = Some(result);
            }
        }
        self.stats.add_morsels_dispatched(tasks as u64);
        self.stats.add_parallel_operators(1);
        if pipelined > 0 {
            self.stats.add_pipelined_operators(pipelined as u64);
        }
        let rows_in: u64 = rows_per_worker.iter().sum();
        let rows_out: u64 = merged
            .iter()
            .filter_map(|slot| match slot {
                Some(Ok(output)) => Some(output.output_rows()),
                _ => None,
            })
            .sum();
        self.trace.record(OperatorTrace {
            operator: operator.to_string(),
            morsels: tasks,
            workers,
            rows_per_worker,
            duration,
            pipelined_stages: pipelined,
            pool_spawns: spawned,
            rows_in,
            rows_out,
        });
        merged
            .into_iter()
            .map(|slot| slot.expect("every task index is produced exactly once"))
            .collect()
    }

    /// Morsel-driven map: splits `len` rows into morsels and runs `f` per morsel range,
    /// returning the per-morsel outputs in morsel order. `pipelined` is forwarded to
    /// the trace (see [`Executor::run_pool`]).
    ///
    /// `ExecConfig::morsel_size` is the *floor*: large inputs use proportionally larger
    /// morsels so the queue never holds more than a few tasks per worker (per-morsel
    /// dispatch overhead stays bounded), while still leaving enough tasks for the pool
    /// to balance skew. The split depends only on `len` and the configuration — never
    /// on scheduling — so the morsel-order merge stays deterministic.
    pub(crate) fn run_morsels<T, F>(
        &self,
        operator: &str,
        pipelined: usize,
        len: usize,
        f: F,
    ) -> Result<Vec<T>>
    where
        T: Send + OutputRows + 'static,
        F: Fn(&Executor, Range<usize>) -> Result<T> + Send + Sync + 'static,
    {
        let tasks_per_worker = 4;
        let effective = self
            .config
            .morsel_size
            .max(1)
            .max(len.div_ceil(self.config.parallelism.max(1) * tasks_per_worker));
        let ranges = morsel_ranges(len, effective);
        let weights = ranges.clone();
        let task_rows = move |idx: usize| weights[idx].len() as u64;
        self.run_pool(
            operator,
            pipelined,
            ranges.len(),
            task_rows,
            move |view, idx| f(view, ranges[idx].clone()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    #[test]
    fn empty_input_produces_no_morsels() {
        assert!(morsel_ranges(0, 1024).is_empty());
    }

    #[test]
    fn input_smaller_than_one_morsel_is_a_single_range() {
        assert_eq!(morsel_ranges(7, 1024), vec![0..7]);
    }

    #[test]
    fn exact_multiple_splits_cleanly() {
        assert_eq!(morsel_ranges(8, 4), vec![0..4, 4..8]);
    }

    #[test]
    fn remainder_goes_into_a_short_tail_morsel() {
        assert_eq!(morsel_ranges(10, 4), vec![0..4, 4..8, 8..10]);
    }

    #[test]
    fn zero_morsel_size_is_clamped_not_divergent() {
        assert_eq!(morsel_ranges(3, 0), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn ranges_cover_input_without_gaps_or_overlap() {
        for (len, size) in [(1, 1), (1000, 7), (4096, 1024), (5, 100)] {
            let ranges = morsel_ranges(len, size);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "gap before {r:?}");
                assert!(r.end > r.start, "empty morsel {r:?}");
                assert!(r.len() <= size.max(1));
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn pool_reuses_threads_across_batches() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.worker_count(), 3);
        assert_eq!(pool.threads_spawned(), 3);
        for round in 0..5u64 {
            let counter = Arc::new(TestCounter::new(0));
            let job = {
                let counter = Arc::clone(&counter);
                Box::new(move |_slot: usize, idx: usize| {
                    counter.fetch_add(idx as u64 + 1, Ordering::Relaxed);
                })
            };
            pool.run_batch(3, 8, job).unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 36, "round {round}");
        }
        // The whole point: repeated batches spawn no new threads.
        assert_eq!(pool.threads_spawned(), 3);
        assert_eq!(pool.stats().batches_run, 5);
    }

    #[test]
    fn pool_grows_on_demand_and_only_once() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 0);
        assert_eq!(pool.ensure_workers(2), 2);
        assert_eq!(pool.ensure_workers(2), 0);
        assert_eq!(pool.ensure_workers(4), 2);
        assert_eq!(pool.worker_count(), 4);
        assert_eq!(pool.threads_spawned(), 4);
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let pool = WorkerPool::new(1);
        pool.run_batch(4, 0, Box::new(|_, _| panic!("never called")))
            .unwrap();
    }

    #[test]
    fn panicking_task_fails_the_batch_but_not_the_pool() {
        let pool = WorkerPool::new(2);
        let ran = Arc::new(TestCounter::new(0));
        let job = {
            let ran = Arc::clone(&ran);
            Box::new(move |_slot: usize, idx: usize| {
                if idx == 3 {
                    panic!("udf exploded mid-morsel");
                }
                ran.fetch_add(1, Ordering::Relaxed);
            })
        };
        let err = pool.run_batch(2, 6, job).unwrap_err();
        assert!(err.contains("udf exploded"), "{err}");
        // Every non-panicking task still completed (completion never hangs) …
        assert_eq!(ran.load(Ordering::Relaxed), 5);
        // … the workers survived, and the next batch runs normally.
        assert_eq!(pool.worker_count(), 2);
        let ok = Arc::new(TestCounter::new(0));
        let job = {
            let ok = Arc::clone(&ok);
            Box::new(move |_slot: usize, _idx: usize| {
                ok.fetch_add(1, Ordering::Relaxed);
            })
        };
        pool.run_batch(2, 4, job).unwrap();
        assert_eq!(ok.load(Ordering::Relaxed), 4);
        assert_eq!(pool.threads_spawned(), 2, "recovery must not respawn");
    }

    // Unit tests drive `run_pool` with bare indexes as task outputs.
    impl OutputRows for usize {
        fn output_rows(&self) -> u64 {
            1
        }
    }

    #[test]
    fn run_pool_surfaces_panics_and_stays_usable() {
        use decorr_storage::Catalog;
        use decorr_udf::FunctionRegistry;

        let executor = Executor::with_config(
            Arc::new(Catalog::new()),
            Arc::new(FunctionRegistry::new()),
            crate::ExecConfig::default().with_parallelism(2),
        );
        let err = executor
            .run_pool(
                "panicky",
                0,
                6,
                |_| 1,
                |_, idx| {
                    if idx == 2 {
                        panic!("boom at {idx}");
                    }
                    Ok(idx)
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("morsel worker panicked"), "{err}");
        assert!(err.to_string().contains("boom at 2"), "{err}");
        // The same executor (same lazily-created pool) runs the next batch fine, on
        // the same threads.
        let spawned_before = executor.worker_pool().threads_spawned();
        let out = executor
            .run_pool("ok", 0, 6, |_| 1, |_, idx| Ok(idx * 10))
            .unwrap();
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
        assert_eq!(executor.worker_pool().threads_spawned(), spawned_before);
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        let pool = Arc::new(WorkerPool::new(4));
        let total = Arc::new(TestCounter::new(0));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                scope.spawn(move || {
                    for _ in 0..10 {
                        let total = Arc::clone(&total);
                        pool.run_batch(
                            2,
                            16,
                            Box::new(move |_, _| {
                                total.fetch_add(1, Ordering::Relaxed);
                            }),
                        )
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 3 * 10 * 16);
        assert_eq!(pool.threads_spawned(), 4);
    }
}
