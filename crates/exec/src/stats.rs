//! Runtime counters and the per-operator execution trace.
//!
//! The executor is shared by reference across the morsel workers of the parallel
//! engine, so its live counters are lock-free atomics ([`AtomicExecStats`]); callers
//! read them through the plain [`ExecStats`] snapshot the engine has always exposed.
//! The [`ExecTrace`] mirrors the optimizer's per-pass instrumentation on the execution
//! side: one [`OperatorTrace`] per morsel-driven operator, recording how many morsels
//! were dispatched, how the rows spread across workers, and the operator's wall clock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use decorr_algebra::RelExpr;

/// Runtime counters, useful for tests, EXPLAIN ANALYZE-style reporting and the
/// experiment harness (e.g. the number of UDF invocations actually performed).
///
/// This is the *snapshot* form; the executor's live counters are the atomic
/// [`AtomicExecStats`], which morsel workers update without taking a lock.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExecStats {
    pub rows_scanned: u64,
    pub index_lookups: u64,
    pub udf_invocations: u64,
    pub subqueries_executed: u64,
    pub hash_joins: u64,
    pub nested_loop_joins: u64,
    /// Morsels dispatched to the worker pool (0 for a fully serial execution).
    pub morsels_dispatched: u64,
    /// Operators that took the parallel path.
    pub parallel_operators: u64,
    /// Worker threads spawned while executing this query. With a warm persistent pool
    /// this stays 0: spawning is a pool-lifecycle event, not a per-operator cost.
    pub pool_spawns: u64,
    /// Plan operators executed as part of a fused (pipelined) chain instead of
    /// materializing their intermediate result.
    pub pipelined_operators: u64,
    /// Pure-UDF calls answered by the database-owned memo cache (results reused
    /// across queries). `udf_invocations` counts only *evaluated* calls.
    pub udf_memo_hits: u64,
    /// Pure-UDF calls answered by the per-query dedup cache (repeated argument
    /// tuples within one execution).
    pub udf_dedup_hits: u64,
    /// Distinct argument tuples evaluated by the batched invocation path (fanned out
    /// over the worker pool ahead of per-row evaluation).
    pub udf_batch_evals: u64,
    /// Table shards skipped entirely because their cached min/max summary proved no
    /// row could satisfy a scan predicate's numeric bounds.
    pub shards_pruned: u64,
}

/// Lock-free live counters. Every counter is monotonically increasing and additions
/// commute, so `Ordering::Relaxed` is sufficient: a snapshot taken after `execute`
/// returns observes every update (the thread joins in `std::thread::scope` synchronize).
#[derive(Debug, Default)]
pub struct AtomicExecStats {
    pub rows_scanned: AtomicU64,
    pub index_lookups: AtomicU64,
    pub udf_invocations: AtomicU64,
    pub subqueries_executed: AtomicU64,
    pub hash_joins: AtomicU64,
    pub nested_loop_joins: AtomicU64,
    pub morsels_dispatched: AtomicU64,
    pub parallel_operators: AtomicU64,
    pub pool_spawns: AtomicU64,
    pub pipelined_operators: AtomicU64,
    pub udf_memo_hits: AtomicU64,
    pub udf_dedup_hits: AtomicU64,
    pub udf_batch_evals: AtomicU64,
    pub shards_pruned: AtomicU64,
}

impl AtomicExecStats {
    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_index_lookups(&self, n: u64) {
        self.index_lookups.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_udf_invocations(&self, n: u64) {
        self.udf_invocations.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_subqueries_executed(&self, n: u64) {
        self.subqueries_executed.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_hash_joins(&self, n: u64) {
        self.hash_joins.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_nested_loop_joins(&self, n: u64) {
        self.nested_loop_joins.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_morsels_dispatched(&self, n: u64) {
        self.morsels_dispatched.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_parallel_operators(&self, n: u64) {
        self.parallel_operators.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_pool_spawns(&self, n: u64) {
        self.pool_spawns.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_pipelined_operators(&self, n: u64) {
        self.pipelined_operators.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_udf_memo_hits(&self, n: u64) {
        self.udf_memo_hits.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_udf_dedup_hits(&self, n: u64) {
        self.udf_dedup_hits.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_udf_batch_evals(&self, n: u64) {
        self.udf_batch_evals.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_shards_pruned(&self, n: u64) {
        self.shards_pruned.fetch_add(n, Ordering::Relaxed);
    }

    /// A plain snapshot of the counters.
    pub fn snapshot(&self) -> ExecStats {
        ExecStats {
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            index_lookups: self.index_lookups.load(Ordering::Relaxed),
            udf_invocations: self.udf_invocations.load(Ordering::Relaxed),
            subqueries_executed: self.subqueries_executed.load(Ordering::Relaxed),
            hash_joins: self.hash_joins.load(Ordering::Relaxed),
            nested_loop_joins: self.nested_loop_joins.load(Ordering::Relaxed),
            morsels_dispatched: self.morsels_dispatched.load(Ordering::Relaxed),
            parallel_operators: self.parallel_operators.load(Ordering::Relaxed),
            pool_spawns: self.pool_spawns.load(Ordering::Relaxed),
            pipelined_operators: self.pipelined_operators.load(Ordering::Relaxed),
            udf_memo_hits: self.udf_memo_hits.load(Ordering::Relaxed),
            udf_dedup_hits: self.udf_dedup_hits.load(Ordering::Relaxed),
            udf_batch_evals: self.udf_batch_evals.load(Ordering::Relaxed),
            shards_pruned: self.shards_pruned.load(Ordering::Relaxed),
        }
    }
}

/// What one morsel-driven operator did: dispatched morsels, the per-worker row spread,
/// and the operator's elapsed wall clock. The serial path records nothing — it is
/// byte-for-byte the pre-parallel executor.
#[derive(Debug, Clone)]
pub struct OperatorTrace {
    /// Operator name plus the parallel stage ("scan(orders)", "hash-join probe", …).
    pub operator: String,
    /// Morsels dispatched to the worker pool.
    pub morsels: usize,
    /// Worker-pool size for this operator.
    pub workers: usize,
    /// Input rows each worker processed (index = worker id). The spread shows how well
    /// the morsel queue balanced the operator.
    pub rows_per_worker: Vec<u64>,
    /// Wall-clock time of the parallel section (dispatch → last task finished).
    pub duration: Duration,
    /// Plan operators fused into this dispatch (0 = a single-operator dispatch; n ≥ 2
    /// = a pipelined chain, e.g. scan→filter→project, executed in one pass per morsel).
    pub pipelined_stages: usize,
    /// Worker threads the pool had to spawn for this operator (0 once the pool is
    /// warm — the persistent-pool steady state).
    pub pool_spawns: usize,
    /// Input rows this dispatch consumed (the sum of `rows_per_worker`).
    pub rows_in: u64,
    /// Output rows (or build entries / groups, for non-row-producing stages) this
    /// dispatch produced — the actual-cardinality side of estimate-vs-actual
    /// reporting.
    pub rows_out: u64,
}

impl OperatorTrace {
    pub fn total_rows(&self) -> u64 {
        self.rows_per_worker.iter().sum()
    }
}

/// The executor-side counterpart of the optimizer's `PipelineReport`: one entry per
/// morsel-driven operator, in completion order.
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    pub operators: Vec<OperatorTrace>,
}

impl ExecTrace {
    pub fn is_empty(&self) -> bool {
        self.operators.is_empty()
    }

    /// Total morsels dispatched across all operators.
    pub fn total_morsels(&self) -> usize {
        self.operators.iter().map(|o| o.morsels).sum()
    }

    /// Renders the per-operator table (the execution analogue of
    /// `PipelineReport::render`).
    pub fn render(&self) -> String {
        if self.operators.is_empty() {
            return "no parallel operators (serial execution)\n".to_string();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<36} {:>8} {:>8} {:>6} {:>7} {:>9} {:>9} {:>12}  rows/worker\n",
            "operator", "morsels", "workers", "fused", "spawns", "rows-in", "rows-out", "time"
        ));
        for op in &self.operators {
            let spread: Vec<String> = op.rows_per_worker.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "{:<36} {:>8} {:>8} {:>6} {:>7} {:>9} {:>9} {:>9.3} ms  [{}]\n",
                op.operator,
                op.morsels,
                op.workers,
                op.pipelined_stages,
                op.pool_spawns,
                op.rows_in,
                op.rows_out,
                op.duration.as_secs_f64() * 1e3,
                spread.join(", "),
            ));
        }
        out
    }
}

/// Shared, locked trace collector. The lock is taken once per *operator* (not per row
/// or morsel): workers report their row counts back through the morsel driver, which
/// appends a single [`OperatorTrace`] after the scope joins.
#[derive(Debug, Default)]
pub struct TraceCollector {
    operators: Mutex<Vec<OperatorTrace>>,
}

impl TraceCollector {
    pub fn record(&self, trace: OperatorTrace) {
        self.operators
            .lock()
            .expect("trace collector poisoned")
            .push(trace);
    }

    pub fn snapshot(&self) -> ExecTrace {
        ExecTrace {
            operators: self
                .operators
                .lock()
                .expect("trace collector poisoned")
                .clone(),
        }
    }
}

// ------------------------------------------------------------- cardinality collection

/// Actual cardinality of one plan node across a query's execution: how many times the
/// node ran (correlated nodes run once per outer row) and how many rows it produced
/// in total. Keyed by the node's structural [`RelExpr::fingerprint`], which is also
/// what the optimizer's per-node estimates key on — joining the two yields the
/// per-operator q-errors shown by `EXPLAIN ANALYZE` and gated by the stats bench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeCardinality {
    pub fingerprint: u64,
    /// Operator name (`Scan`, `Select`, `Join`, …).
    pub operator: String,
    /// Times this exact subtree was executed.
    pub executions: u64,
    /// Total rows produced across all executions.
    pub rows_out: u64,
}

impl NodeCardinality {
    /// Mean rows per execution — the number comparable against a one-shot estimate.
    pub fn mean_rows(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.rows_out as f64 / self.executions as f64
        }
    }
}

/// Shared collector of per-node actual cardinalities. Only populated when
/// `ExecConfig::collect_cardinalities` is on (diagnostic paths: `EXPLAIN ANALYZE`,
/// the stats bench, accuracy tests) — each `record` pays a `Debug` rendering of the
/// subtree (the fingerprint) plus a mutex round-trip per node *execution*, so the
/// flag keeps that entirely off the hot path.
#[derive(Debug, Default)]
pub struct CardinalityCollector {
    nodes: Mutex<BTreeMap<u64, NodeCardinality>>,
}

impl CardinalityCollector {
    /// Records one execution of `plan` producing `rows_out` rows.
    pub fn record(&self, plan: &RelExpr, rows_out: u64) {
        let fingerprint = plan.fingerprint();
        let mut nodes = self.nodes.lock().expect("cardinality collector poisoned");
        let entry = nodes.entry(fingerprint).or_insert_with(|| NodeCardinality {
            fingerprint,
            operator: plan.name().to_string(),
            executions: 0,
            rows_out: 0,
        });
        entry.executions += 1;
        entry.rows_out += rows_out;
    }

    /// Everything recorded so far, in fingerprint order.
    pub fn snapshot(&self) -> Vec<NodeCardinality> {
        self.nodes
            .lock()
            .expect("cardinality collector poisoned")
            .values()
            .cloned()
            .collect()
    }
}

// ------------------------------------------------------------------- UDF wall clocks

/// Measured wall-clock of one UDF across a query: evaluated-invocation count, total
/// evaluation time, and how many calls the dedup/memo caches answered instead.
///
/// `invocations` counts *real* body evaluations only. Cache hits must stay out of it:
/// folding them in would divide the measured total over calls that cost nothing,
/// draining the feedback store's learned per-UDF cost toward zero as the memo warms —
/// and a cost model that believes UDFs are free would stop decorrelating them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdfTiming {
    pub name: String,
    /// Calls whose body actually ran (and whose wall clock is in `total`).
    pub invocations: u64,
    pub total: Duration,
    /// Calls answered by the memo or per-query dedup cache without evaluation.
    pub hits: u64,
}

impl UdfTiming {
    /// Mean wall-clock per *evaluated* invocation.
    pub fn mean(&self) -> Duration {
        if self.invocations == 0 {
            Duration::ZERO
        } else {
            self.total / self.invocations as u32
        }
    }

    /// Fraction of all calls that had to be evaluated (1.0 = no cache help). This is
    /// the "effective invocation count" signal the cost model learns.
    pub fn evaluated_fraction(&self) -> f64 {
        let calls = self.invocations + self.hits;
        if calls == 0 {
            1.0
        } else {
            self.invocations as f64 / calls as f64
        }
    }
}

/// Shared collector of per-UDF invocation wall-clocks. Always on: the lock is taken
/// once per UDF *invocation*, whose body executes whole queries — the overhead is
/// noise, and the engine's feedback loop needs measured costs from normal runs, not
/// just diagnostic ones.
#[derive(Debug, Default)]
pub struct UdfTimingCollector {
    /// name → (evaluated invocations, total evaluation time, cache hits).
    timings: Mutex<BTreeMap<String, (u64, Duration, u64)>>,
}

impl UdfTimingCollector {
    /// Records one *evaluated* invocation and its wall clock.
    pub fn record(&self, name: &str, elapsed: Duration) {
        let mut timings = self.timings.lock().expect("udf timing collector poisoned");
        let entry = timings
            .entry(name.to_string())
            .or_insert((0, Duration::ZERO, 0));
        entry.0 += 1;
        entry.1 += elapsed;
    }

    /// Records a call answered from a cache — kept separate so learned per-UDF costs
    /// stay per-evaluation (see [`UdfTiming`]).
    pub fn record_hit(&self, name: &str) {
        let mut timings = self.timings.lock().expect("udf timing collector poisoned");
        let entry = timings
            .entry(name.to_string())
            .or_insert((0, Duration::ZERO, 0));
        entry.2 += 1;
    }

    pub fn snapshot(&self) -> Vec<UdfTiming> {
        self.timings
            .lock()
            .expect("udf timing collector poisoned")
            .iter()
            .map(|(name, (invocations, total, hits))| UdfTiming {
                name: name.clone(),
                invocations: *invocations,
                total: *total,
                hits: *hits,
            })
            .collect()
    }
}

// -------------------------------------------------------------- predicate selectivity

/// Observed outcome counts of one UDF-bearing conjunct in a cost-ordered filter:
/// how many rows reached it and how many passed. `passed / evaluated` is the observed
/// selectivity the feedback store aggregates for future predicate ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdfSelectivity {
    pub name: String,
    pub evaluated: u64,
    pub passed: u64,
}

/// Shared collector of per-UDF predicate outcomes, populated only by the
/// cost-ordered-conjunction path in `execute_select` (one locked batch update per
/// morsel, not per row).
#[derive(Debug, Default)]
pub struct UdfSelectivityCollector {
    outcomes: Mutex<BTreeMap<String, (u64, u64)>>,
}

impl UdfSelectivityCollector {
    pub fn record(&self, name: &str, evaluated: u64, passed: u64) {
        if evaluated == 0 {
            return;
        }
        let mut outcomes = self
            .outcomes
            .lock()
            .expect("selectivity collector poisoned");
        let entry = outcomes.entry(name.to_string()).or_insert((0, 0));
        entry.0 += evaluated;
        entry.1 += passed;
    }

    pub fn snapshot(&self) -> Vec<UdfSelectivity> {
        self.outcomes
            .lock()
            .expect("selectivity collector poisoned")
            .iter()
            .map(|(name, (evaluated, passed))| UdfSelectivity {
                name: name.clone(),
                evaluated: *evaluated,
                passed: *passed,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_stats_snapshot_round_trips() {
        let stats = AtomicExecStats::default();
        stats.add_rows_scanned(10);
        stats.add_rows_scanned(5);
        stats.add_udf_invocations(3);
        stats.add_morsels_dispatched(7);
        stats.add_parallel_operators(2);
        stats.add_pool_spawns(4);
        stats.add_pipelined_operators(3);
        let snap = stats.snapshot();
        assert_eq!(snap.rows_scanned, 15);
        assert_eq!(snap.udf_invocations, 3);
        assert_eq!(snap.morsels_dispatched, 7);
        assert_eq!(snap.parallel_operators, 2);
        assert_eq!(snap.pool_spawns, 4);
        assert_eq!(snap.pipelined_operators, 3);
        assert_eq!(snap.hash_joins, 0);
    }

    #[test]
    fn trace_renders_and_totals() {
        let collector = TraceCollector::default();
        assert!(collector.snapshot().is_empty());
        collector.record(OperatorTrace {
            operator: "scan(orders)".into(),
            morsels: 4,
            workers: 2,
            rows_per_worker: vec![3000, 1096],
            duration: Duration::from_micros(1500),
            pipelined_stages: 2,
            pool_spawns: 0,
            rows_in: 4096,
            rows_out: 4000,
        });
        let trace = collector.snapshot();
        assert_eq!(trace.total_morsels(), 4);
        assert_eq!(trace.operators[0].total_rows(), 4096);
        let rendered = trace.render();
        assert!(rendered.contains("scan(orders)"));
        assert!(rendered.contains("[3000, 1096]"));
        assert!(rendered.contains("rows-out"));
        assert!(rendered.contains("4000"));
        let empty = ExecTrace::default().render();
        assert!(empty.contains("serial execution"));
    }

    #[test]
    fn cardinality_collector_accumulates_per_fingerprint() {
        let collector = CardinalityCollector::default();
        let scan = RelExpr::scan("orders");
        let other = RelExpr::scan("customer");
        collector.record(&scan, 100);
        collector.record(&scan, 100);
        collector.record(&other, 7);
        let snapshot = collector.snapshot();
        assert_eq!(snapshot.len(), 2);
        let orders = snapshot
            .iter()
            .find(|n| n.fingerprint == scan.fingerprint())
            .unwrap();
        assert_eq!(orders.executions, 2);
        assert_eq!(orders.rows_out, 200);
        assert_eq!(orders.mean_rows(), 100.0);
        assert_eq!(orders.operator, "Scan");
    }

    #[test]
    fn udf_timing_collector_accumulates() {
        let collector = UdfTimingCollector::default();
        collector.record("f", Duration::from_micros(100));
        collector.record("f", Duration::from_micros(300));
        collector.record("g", Duration::from_micros(5));
        let snapshot = collector.snapshot();
        let f = snapshot.iter().find(|t| t.name == "f").unwrap();
        assert_eq!(f.invocations, 2);
        assert_eq!(f.total, Duration::from_micros(400));
        assert_eq!(f.mean(), Duration::from_micros(200));
        assert_eq!(f.hits, 0);
        assert_eq!(f.evaluated_fraction(), 1.0);
    }

    #[test]
    fn cache_hits_do_not_dilute_the_measured_mean() {
        let collector = UdfTimingCollector::default();
        collector.record("f", Duration::from_micros(400));
        for _ in 0..3 {
            collector.record_hit("f");
        }
        // A UDF first seen through hits only must still snapshot (hits-only entry).
        collector.record_hit("warm_only");
        let snapshot = collector.snapshot();
        let f = snapshot.iter().find(|t| t.name == "f").unwrap();
        assert_eq!(f.invocations, 1, "hits must not count as invocations");
        assert_eq!(f.hits, 3);
        // The mean stays the per-evaluation cost; 400/4 would be the drift bug.
        assert_eq!(f.mean(), Duration::from_micros(400));
        assert_eq!(f.evaluated_fraction(), 0.25);
        let warm = snapshot.iter().find(|t| t.name == "warm_only").unwrap();
        assert_eq!((warm.invocations, warm.hits), (0, 1));
        assert_eq!(warm.mean(), Duration::ZERO);
    }

    #[test]
    fn selectivity_collector_accumulates_outcomes() {
        let collector = UdfSelectivityCollector::default();
        collector.record("f", 100, 10);
        collector.record("f", 50, 5);
        collector.record("g", 0, 0); // no-op
        let snapshot = collector.snapshot();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot[0].name, "f");
        assert_eq!(snapshot[0].evaluated, 150);
        assert_eq!(snapshot[0].passed, 15);
    }
}
