//! Accumulators for the built-in aggregate functions.
//!
//! User-defined aggregates (including the auxiliary aggregates synthesised from cursor
//! loops) are executed by the interpreter — see `Executor::accumulate_user_aggregate`.

use decorr_algebra::AggFunc;
use decorr_common::Value;

/// Running state for one built-in aggregate over one group.
#[derive(Debug, Clone)]
pub enum BuiltinAccumulator {
    Count(i64),
    CountStar(i64),
    Sum(Option<Value>),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, count: i64 },
}

impl BuiltinAccumulator {
    pub fn new(func: &AggFunc) -> BuiltinAccumulator {
        match func {
            AggFunc::Count => BuiltinAccumulator::Count(0),
            AggFunc::CountStar => BuiltinAccumulator::CountStar(0),
            AggFunc::Sum => BuiltinAccumulator::Sum(None),
            AggFunc::Min => BuiltinAccumulator::Min(None),
            AggFunc::Max => BuiltinAccumulator::Max(None),
            AggFunc::Avg => BuiltinAccumulator::Avg { sum: 0.0, count: 0 },
            AggFunc::UserDefined(name) => {
                unreachable!("user-defined aggregate '{name}' must not use BuiltinAccumulator")
            }
        }
    }

    /// Feeds one input row's argument values. NULL arguments are ignored by every
    /// aggregate except `count(*)`, per SQL semantics.
    pub fn update(&mut self, args: &[Value]) {
        let arg = args.first();
        match self {
            BuiltinAccumulator::CountStar(n) => *n += 1,
            BuiltinAccumulator::Count(n) => {
                if matches!(arg, Some(v) if !v.is_null()) {
                    *n += 1;
                }
            }
            BuiltinAccumulator::Sum(acc) => {
                if let Some(v) = arg {
                    if !v.is_null() {
                        *acc = Some(match acc.take() {
                            None => v.clone(),
                            Some(current) => current.add(v).unwrap_or(Value::Null),
                        });
                    }
                }
            }
            BuiltinAccumulator::Min(acc) => {
                if let Some(v) = arg {
                    if !v.is_null() {
                        let replace = match acc {
                            None => true,
                            Some(current) => v.total_cmp(current) == std::cmp::Ordering::Less,
                        };
                        if replace {
                            *acc = Some(v.clone());
                        }
                    }
                }
            }
            BuiltinAccumulator::Max(acc) => {
                if let Some(v) = arg {
                    if !v.is_null() {
                        let replace = match acc {
                            None => true,
                            Some(current) => v.total_cmp(current) == std::cmp::Ordering::Greater,
                        };
                        if replace {
                            *acc = Some(v.clone());
                        }
                    }
                }
            }
            BuiltinAccumulator::Avg { sum, count } => {
                if let Some(v) = arg {
                    if let Ok(f) = v.as_float() {
                        *sum += f;
                        *count += 1;
                    }
                }
            }
        }
    }

    /// Produces the final aggregate value. Empty groups yield 0 for counts and NULL for
    /// everything else.
    pub fn finalize(self) -> Value {
        match self {
            BuiltinAccumulator::Count(n) | BuiltinAccumulator::CountStar(n) => Value::Int(n),
            BuiltinAccumulator::Sum(acc)
            | BuiltinAccumulator::Min(acc)
            | BuiltinAccumulator::Max(acc) => acc.unwrap_or(Value::Null),
            BuiltinAccumulator::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, inputs: &[Value]) -> Value {
        let mut acc = BuiltinAccumulator::new(&func);
        for v in inputs {
            acc.update(std::slice::from_ref(v));
        }
        acc.finalize()
    }

    #[test]
    fn sum_skips_nulls() {
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Null, Value::Int(2)]),
            Value::Int(3)
        );
        assert_eq!(run(AggFunc::Sum, &[Value::Null]), Value::Null);
        assert_eq!(run(AggFunc::Sum, &[]), Value::Null);
    }

    #[test]
    fn count_vs_count_star() {
        let inputs = [Value::Int(1), Value::Null, Value::Int(2)];
        assert_eq!(run(AggFunc::Count, &inputs), Value::Int(2));
        assert_eq!(run(AggFunc::CountStar, &inputs), Value::Int(3));
        assert_eq!(run(AggFunc::CountStar, &[]), Value::Int(0));
    }

    #[test]
    fn min_max_avg() {
        let inputs = [Value::Int(5), Value::Int(1), Value::Float(3.5), Value::Null];
        assert_eq!(run(AggFunc::Min, &inputs), Value::Int(1));
        assert_eq!(run(AggFunc::Max, &inputs), Value::Int(5));
        assert_eq!(
            run(AggFunc::Avg, &inputs),
            Value::Float((5.0 + 1.0 + 3.5) / 3.0)
        );
        assert_eq!(run(AggFunc::Avg, &[Value::Null]), Value::Null);
    }

    #[test]
    fn mixed_numeric_sum_promotes() {
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Float(0.5)]),
            Value::Float(1.5)
        );
    }
}
