//! The procedural UDF interpreter — the paper's *iterative invocation* baseline.
//!
//! When the engine executes a query without decorrelation, every UDF call in the select
//! list or WHERE clause lands here: the function body is executed statement by
//! statement, and every embedded SQL query runs as a fresh (index-assisted) query
//! against the catalog — once per outer tuple, exactly the behaviour whose cost the
//! paper sets out to eliminate.
//!
//! The interpreter also provides the initialize/accumulate/terminate protocol for
//! user-defined aggregates (Section VII / Example 6), which the hash-aggregation
//! operator invokes per input row.

use std::collections::HashMap;

use decorr_common::{Error, Result, Row, Value};
use decorr_udf::{Statement, UdfDefinition};

use crate::env::Env;
use crate::executor::{Executor, ResultSet};
use crate::memo::{fingerprint_invocation, MemoValue, Reservation, NO_EPOCH};

/// Result of executing a list of statements: either control flow ran off the end, or a
/// `RETURN` was executed with the given value.
enum Flow {
    Continue,
    Return(Value),
}

impl Executor {
    /// Checks the engine-owned cross-query memo for a pure-UDF result, using the
    /// per-UDF epoch of this query's pinned snapshot. A hit is counted in `ExecStats`
    /// and the timing collector's *hit* column — never as an invocation, so learned
    /// per-UDF costs stay per-evaluation.
    fn memo_udf_result(&self, name: &str, fingerprint: u64, args: &[Value]) -> Option<MemoValue> {
        let memo = self.memo.as_ref()?;
        let value = memo.get(name, fingerprint, args, self.memo_epoch(name))?;
        self.stats.add_udf_memo_hits(1);
        self.udf_timings.record_hit(name);
        Some(value)
    }

    /// Stores an evaluated pure-UDF result into both caches (whichever are attached).
    fn store_udf_result(&self, name: &str, fingerprint: u64, args: &[Value], value: MemoValue) {
        if let Some(dedup) = &self.dedup {
            dedup.insert(name, fingerprint, args, value.clone(), NO_EPOCH);
        }
        if let Some(memo) = &self.memo {
            memo.insert(name, fingerprint, args, value, self.memo_epoch(name));
        }
    }

    /// Runs a scalar UDF body, counting the invocation and recording its wall clock.
    fn eval_scalar_udf(&self, udf: &UdfDefinition, key: &str, args: &[Value]) -> Result<Value> {
        self.stats.add_udf_invocations(1);
        let started = std::time::Instant::now();
        let result = self.run_scalar_body(udf, args);
        self.udf_timings.record(key, started.elapsed());
        result
    }

    /// Runs a scalar UDF body *without* counting an invocation: the accounting for a
    /// worker that lost a dedup reservation race (see
    /// [`ReservationGuard::took_over`](crate::memo::ReservationGuard::took_over)) and
    /// re-evaluates a tuple another worker already evaluated. The duplicate work is
    /// correct, but counting it would make `udf_invocations` and the learned per-UDF
    /// costs depend on scheduling — so it books as a hit instead.
    fn eval_scalar_udf_as_hit(
        &self,
        udf: &UdfDefinition,
        key: &str,
        args: &[Value],
    ) -> Result<Value> {
        self.stats.add_udf_dedup_hits(1);
        self.udf_timings.record_hit(key);
        self.run_scalar_body(udf, args)
    }

    fn run_scalar_body(&self, udf: &UdfDefinition, args: &[Value]) -> Result<Value> {
        let mut env = self.udf_env(udf, args)?;
        match self.exec_statements(&udf.body, &mut env, &mut None)? {
            Flow::Return(v) => Ok(v),
            Flow::Continue => Ok(Value::Null),
        }
    }

    /// Runs a table-valued UDF body, counting the invocation and recording its wall
    /// clock. Returns the rows inserted into its result table.
    fn eval_table_udf(&self, udf: &UdfDefinition, key: &str, args: &[Value]) -> Result<Vec<Row>> {
        self.stats.add_udf_invocations(1);
        let started = std::time::Instant::now();
        let result = self.run_table_body(udf, args);
        self.udf_timings.record(key, started.elapsed());
        result
    }

    /// Table-valued twin of [`eval_scalar_udf_as_hit`](Executor::eval_scalar_udf_as_hit).
    fn eval_table_udf_as_hit(
        &self,
        udf: &UdfDefinition,
        key: &str,
        args: &[Value],
    ) -> Result<Vec<Row>> {
        self.stats.add_udf_dedup_hits(1);
        self.udf_timings.record_hit(key);
        self.run_table_body(udf, args)
    }

    fn run_table_body(&self, udf: &UdfDefinition, args: &[Value]) -> Result<Vec<Row>> {
        let mut env = self.udf_env(udf, args)?;
        let mut buffer = Some(vec![]);
        self.exec_statements(&udf.body, &mut env, &mut buffer)?;
        Ok(buffer.unwrap_or_default())
    }

    /// Invokes a scalar UDF with already-evaluated argument values. Every evaluated
    /// invocation's wall clock is recorded into the executor's UDF timing collector —
    /// the engine's feedback loop turns these measurements into learned invocation
    /// costs for the strategy choice.
    ///
    /// Pure UDFs first consult the cross-query memo, then *reserve* the argument
    /// tuple in the per-query dedup cache: racing workers evaluating the same tuple
    /// (the Apply path dispatches correlated calls row-at-a-time across the pool)
    /// coalesce onto a single evaluation — one worker runs the body and publishes,
    /// the rest wait for the published result. Cache hits are never counted as
    /// invocations, so the invocation counter equals the number of distinct
    /// evaluations even under races.
    pub fn call_udf(&self, name: &str, args: Vec<Value>) -> Result<Value> {
        let udf = self.registry.udf(name)?;
        if udf.is_table_valued() {
            return Err(Error::Unsupported(format!(
                "table-valued function '{name}' used in a scalar context"
            )));
        }
        let key = decorr_common::normalize_ident(name);
        if !udf.pure || (self.memo.is_none() && self.dedup.is_none()) {
            return self.eval_scalar_udf(udf, &key, &args);
        }
        let fp = fingerprint_invocation(&key, &args);
        if let Some(MemoValue::Scalar(v)) = self.memo_udf_result(&key, fp, &args) {
            return Ok(v);
        }
        if let Some(dedup) = &self.dedup {
            match dedup.reserve(&key, fp, &args, NO_EPOCH) {
                Reservation::Hit(MemoValue::Scalar(v)) => {
                    self.stats.add_udf_dedup_hits(1);
                    self.udf_timings.record_hit(&key);
                    return Ok(v);
                }
                Reservation::Hit(_) => {}
                Reservation::Reserved(guard) => {
                    // An evaluation error drops the guard, which abandons the
                    // reservation and wakes any waiters to take over. A taken-over
                    // reservation means another worker already evaluated this tuple
                    // (and its entry was evicted before we woke) — re-evaluating is
                    // correct but must not inflate the invocation counters.
                    let value = if guard.took_over() {
                        self.eval_scalar_udf_as_hit(udf, &key, &args)?
                    } else {
                        self.eval_scalar_udf(udf, &key, &args)?
                    };
                    guard.publish(&key, &args, MemoValue::Scalar(value.clone()), NO_EPOCH);
                    if let Some(memo) = &self.memo {
                        memo.insert(
                            &key,
                            fp,
                            &args,
                            MemoValue::Scalar(value.clone()),
                            self.memo_epoch(&key),
                        );
                    }
                    return Ok(value);
                }
                Reservation::Bypass => {}
            }
        }
        let value = self.eval_scalar_udf(udf, &key, &args)?;
        self.store_udf_result(&key, fp, &args, MemoValue::Scalar(value.clone()));
        Ok(value)
    }

    /// Invokes a table-valued UDF, returning the rows inserted into its result table.
    /// Pure table-valued UDFs memoize their emitted rows the same way scalar UDFs
    /// memoize their return value (this is what deduplicates repeated correlated
    /// `Apply` iterations over the same outer bindings), including the dedup cache's
    /// reservation protocol under racing workers.
    pub fn call_table_udf(&self, name: &str, args: Vec<Value>) -> Result<ResultSet> {
        let udf = self.registry.udf(name)?;
        let schema = udf
            .returns_table
            .clone()
            .ok_or_else(|| Error::TypeError(format!("function '{name}' is not table-valued")))?;
        let key = decorr_common::normalize_ident(name);
        if !udf.pure || (self.memo.is_none() && self.dedup.is_none()) {
            let rows = self.eval_table_udf(udf, &key, &args)?;
            return Ok(ResultSet { schema, rows });
        }
        let fp = fingerprint_invocation(&key, &args);
        if let Some(MemoValue::Table(rows)) = self.memo_udf_result(&key, fp, &args) {
            return Ok(ResultSet { schema, rows });
        }
        if let Some(dedup) = &self.dedup {
            match dedup.reserve(&key, fp, &args, NO_EPOCH) {
                Reservation::Hit(MemoValue::Table(rows)) => {
                    self.stats.add_udf_dedup_hits(1);
                    self.udf_timings.record_hit(&key);
                    return Ok(ResultSet { schema, rows });
                }
                Reservation::Hit(_) => {}
                Reservation::Reserved(guard) => {
                    let rows = if guard.took_over() {
                        self.eval_table_udf_as_hit(udf, &key, &args)?
                    } else {
                        self.eval_table_udf(udf, &key, &args)?
                    };
                    guard.publish(&key, &args, MemoValue::Table(rows.clone()), NO_EPOCH);
                    if let Some(memo) = &self.memo {
                        memo.insert(
                            &key,
                            fp,
                            &args,
                            MemoValue::Table(rows.clone()),
                            self.memo_epoch(&key),
                        );
                    }
                    return Ok(ResultSet { schema, rows });
                }
                Reservation::Bypass => {}
            }
        }
        let rows = self.eval_table_udf(udf, &key, &args)?;
        self.store_udf_result(&key, fp, &args, MemoValue::Table(rows.clone()));
        Ok(ResultSet { schema, rows })
    }

    fn udf_env(&self, udf: &UdfDefinition, args: &[Value]) -> Result<Env> {
        if udf.params.len() != args.len() {
            return Err(Error::Execution(format!(
                "function '{}' expects {} arguments, got {}",
                udf.name,
                udf.params.len(),
                args.len()
            )));
        }
        let mut params = HashMap::new();
        for (p, v) in udf.params.iter().zip(args.iter()) {
            if !v.is_null() && !p.data_type.is_compatible_with(v.data_type()) {
                return Err(Error::TypeError(format!(
                    "argument '{}' of '{}' expects {}, got {}",
                    p.name,
                    udf.name,
                    p.data_type,
                    v.data_type()
                )));
            }
            params.insert(p.name.clone(), v.clone());
        }
        Ok(Env::with_params(params))
    }

    /// Feeds one input row into a user-defined aggregate's accumulate method.
    pub fn accumulate_user_aggregate(
        &self,
        name: &str,
        state: &mut HashMap<String, Value>,
        args: &[Value],
    ) -> Result<()> {
        let def = self.registry.aggregate(name)?;
        if def.params.len() != args.len() {
            return Err(Error::Execution(format!(
                "aggregate '{name}' expects {} arguments, got {}",
                def.params.len(),
                args.len()
            )));
        }
        let mut env = Env::with_params(state.clone());
        for (p, v) in def.params.iter().zip(args.iter()) {
            env.set_param(&p.name, v.clone());
        }
        self.exec_statements(&def.accumulate, &mut env, &mut None)?;
        // Copy the (possibly updated) state variables back out.
        for (var, _, _) in &def.state {
            if let Some(v) = env.param(var) {
                state.insert(var.clone(), v);
            }
        }
        Ok(())
    }

    /// Produces the final value of a user-defined aggregate from its state.
    pub fn terminate_user_aggregate(
        &self,
        name: &str,
        state: &HashMap<String, Value>,
    ) -> Result<Value> {
        let def = self.registry.aggregate(name)?;
        let env = Env::with_params(state.clone());
        self.eval_expr(&def.terminate, &env)
    }

    /// Executes a statement list. `result_buffer` collects `INSERT INTO <result table>`
    /// rows for table-valued UDFs.
    fn exec_statements(
        &self,
        stmts: &[Statement],
        env: &mut Env,
        result_buffer: &mut Option<Vec<Row>>,
    ) -> Result<Flow> {
        for stmt in stmts {
            match self.exec_statement(stmt, env, result_buffer)? {
                Flow::Return(v) => return Ok(Flow::Return(v)),
                Flow::Continue => {}
            }
        }
        Ok(Flow::Continue)
    }

    fn exec_statement(
        &self,
        stmt: &Statement,
        env: &mut Env,
        result_buffer: &mut Option<Vec<Row>>,
    ) -> Result<Flow> {
        match stmt {
            Statement::Declare {
                name,
                data_type,
                init,
            } => {
                let value = match init {
                    Some(e) => self.eval_expr(e, env)?,
                    None => data_type.uninitialized(),
                };
                env.set_param(name, value);
                Ok(Flow::Continue)
            }
            Statement::Assign { name, expr } => {
                let value = self.eval_expr(expr, env)?;
                env.set_param(name, value);
                Ok(Flow::Continue)
            }
            Statement::SelectInto { query, targets } => {
                let rs = self.execute_with_env(query, env)?;
                match rs.rows.len() {
                    0 => {
                        // No row: retain existing values (system-specific behaviour; see
                        // Section III). Uninitialised targets stay NULL.
                        for t in targets {
                            if env.param(t).is_none() {
                                env.set_param(t, Value::Null);
                            }
                        }
                    }
                    1 => {
                        let row = &rs.rows[0];
                        if row.len() < targets.len() {
                            return Err(Error::Execution(format!(
                                "SELECT INTO provides {} columns for {} targets",
                                row.len(),
                                targets.len()
                            )));
                        }
                        for (i, t) in targets.iter().enumerate() {
                            env.set_param(t, row.get(i).clone());
                        }
                    }
                    n => {
                        return Err(Error::Execution(format!(
                            "SELECT INTO returned {n} rows (expected at most one)"
                        )))
                    }
                }
                Ok(Flow::Continue)
            }
            Statement::If {
                condition,
                then_branch,
                else_branch,
            } => {
                let branch = if self.eval_predicate(condition, env)? {
                    then_branch
                } else {
                    else_branch
                };
                self.exec_statements(branch, env, result_buffer)
            }
            Statement::CursorLoop {
                query,
                fetch_vars,
                body,
            } => {
                let rs = self.execute_with_env(query, env)?;
                for row in &rs.rows {
                    if row.len() < fetch_vars.len() {
                        return Err(Error::Execution(format!(
                            "cursor provides {} columns for {} fetch variables",
                            row.len(),
                            fetch_vars.len()
                        )));
                    }
                    for (i, var) in fetch_vars.iter().enumerate() {
                        env.set_param(var, row.get(i).clone());
                    }
                    if let Flow::Return(v) = self.exec_statements(body, env, result_buffer)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Continue)
            }
            Statement::While { condition, body } => {
                let mut iterations = 0usize;
                while self.eval_predicate(condition, env)? {
                    iterations += 1;
                    if iterations > self.config.max_loop_iterations {
                        return Err(Error::Execution(format!(
                            "WHILE loop exceeded {} iterations",
                            self.config.max_loop_iterations
                        )));
                    }
                    if let Flow::Return(v) = self.exec_statements(body, env, result_buffer)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Continue)
            }
            Statement::InsertIntoResult { values } => {
                let row_values: Result<Vec<Value>> =
                    values.iter().map(|v| self.eval_expr(v, env)).collect();
                match result_buffer {
                    Some(buffer) => buffer.push(Row::new(row_values?)),
                    None => {
                        return Err(Error::Unsupported(
                            "INSERT into a result table outside a table-valued function".into(),
                        ))
                    }
                }
                Ok(Flow::Continue)
            }
            Statement::Return { expr } => {
                let value = match expr {
                    Some(e) => self.eval_expr(e, env)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(value))
            }
        }
    }
}
