//! Query execution: expression evaluation, a row-at-a-time executor over the logical
//! algebra, and the procedural UDF interpreter.
//!
//! The executor evaluates [`decorr_algebra::RelExpr`] trees directly against the
//! in-memory catalog. It supports two execution styles, which is exactly what the
//! paper's experiments compare:
//!
//! * **iterative (correlated) execution** — UDF invocations in projections/predicates are
//!   executed per row by the [`interpreter`], which in turn runs the queries inside the
//!   UDF body one invocation at a time (using hash-index lookups when available, like the
//!   commercial systems' "default indices"); correlated subqueries and the Apply-family
//!   operators are likewise executed tuple-by-tuple;
//! * **set-oriented execution** — flat plans produced by the decorrelation rewrite are
//!   executed with hash joins, hash aggregation and hash-based duplicate elimination.
//!
//! The split between this crate and `decorr-optimizer` is deliberate: this crate makes
//! only *local, mechanical* choices (use an index if one matches, use a hash join if the
//! join has an equality condition and the inputs are large enough); the optimizer crate
//! owns the cost model and the cost-based choice between the original and rewritten
//! query forms.

pub mod aggregate;
pub mod env;
pub mod eval;
pub mod executor;
pub mod interpreter;
pub mod memo;
pub mod parallel;
pub mod stats;

pub use env::Env;
pub use executor::{ExecConfig, Executor, ResultSet, UdfRuntimeHint};
pub use memo::{fingerprint_invocation, MemoEpoch, MemoValue, UdfMemo, UdfMemoStats};
pub use parallel::{morsel_ranges, WorkerPool, WorkerPoolStats};
pub use stats::{ExecStats, ExecTrace, NodeCardinality, OperatorTrace, UdfSelectivity, UdfTiming};

use decorr_algebra::{ScalarExpr, SchemaProvider};
use decorr_common::{DataType, Result, Schema, Value};
use decorr_storage::Catalog;
use decorr_udf::FunctionRegistry;

/// A [`SchemaProvider`] backed by the storage catalog and the function registry, used by
/// schema inference throughout rewriting and execution.
pub struct CatalogProvider<'a> {
    pub catalog: &'a Catalog,
    pub registry: &'a FunctionRegistry,
}

impl<'a> CatalogProvider<'a> {
    pub fn new(catalog: &'a Catalog, registry: &'a FunctionRegistry) -> CatalogProvider<'a> {
        CatalogProvider { catalog, registry }
    }
}

impl SchemaProvider for CatalogProvider<'_> {
    fn table_schema(&self, table: &str) -> Result<Schema> {
        self.catalog.table_schema(table)
    }

    fn udf_return_type(&self, name: &str) -> Option<DataType> {
        self.registry.return_type(name)
    }

    fn aggregate_empty_value(&self, name: &str) -> Option<Value> {
        let agg = self.registry.aggregate(name).ok()?;
        // The common case (and the only one the synthesised auxiliary aggregates
        // produce): `terminate` returns one state variable, whose initial value is the
        // empty-input result.
        match &agg.terminate {
            ScalarExpr::Param(p) => agg
                .state
                .iter()
                .find(|(name, _, _)| name == p)
                .map(|(_, _, init)| init.clone()),
            ScalarExpr::Literal(v) => Some(v.clone()),
            _ => None,
        }
    }
}
