//! Evaluation environments: row scopes, variable bindings and outer-query correlation.

use std::collections::HashMap;

use decorr_common::{normalize_ident, Row, Schema, Value};

/// An evaluation environment.
///
/// Environments form a chain: the innermost scope is consulted first, and unresolved
/// column / parameter references fall through to the `outer` environment. This is how
/// correlated evaluation works — the right child of an `Apply` is evaluated in an
/// environment whose outer scope is the current outer tuple, and queries inside UDF
/// bodies see the UDF's local variables as parameters.
#[derive(Debug, Clone, Default)]
pub struct Env {
    /// Schema of the current row scope (empty for a pure variable scope).
    pub schema: Schema,
    /// The current row (empty for a pure variable scope).
    pub row: Row,
    /// Named parameters / variables visible in this scope.
    pub params: HashMap<String, Value>,
    /// Enclosing scope, if any.
    pub outer: Option<Box<Env>>,
}

impl Env {
    /// An empty root environment.
    pub fn root() -> Env {
        Env::default()
    }

    /// An environment holding a row of the given schema.
    pub fn with_row(schema: Schema, row: Row) -> Env {
        Env {
            schema,
            row,
            params: HashMap::new(),
            outer: None,
        }
    }

    /// An environment holding only named variables.
    pub fn with_params(params: HashMap<String, Value>) -> Env {
        Env {
            schema: Schema::empty(),
            row: Row::empty(),
            params,
            outer: None,
        }
    }

    /// Returns a copy of this environment nested inside `outer`.
    pub fn nested_in(mut self, outer: &Env) -> Env {
        self.outer = Some(Box::new(outer.clone()));
        self
    }

    /// Sets a parameter value in this scope.
    pub fn set_param(&mut self, name: &str, value: Value) {
        self.params.insert(normalize_ident(name), value);
    }

    /// Looks up a parameter, walking outward through enclosing scopes.
    pub fn param(&self, name: &str) -> Option<Value> {
        let key = normalize_ident(name);
        if let Some(v) = self.params.get(&key) {
            return Some(v.clone());
        }
        self.outer.as_ref().and_then(|o| o.param(name))
    }

    /// Looks up a column reference, walking outward through enclosing scopes.
    /// Ambiguous references within one scope resolve to an error at schema level, so this
    /// only returns the first scope that can resolve the name unambiguously.
    pub fn column(&self, qualifier: Option<&str>, name: &str) -> Option<Value> {
        if let Ok(idx) = self.schema.index_of(qualifier, name) {
            return Some(self.row.get(idx).clone());
        }
        self.outer.as_ref().and_then(|o| o.column(qualifier, name))
    }

    /// True if any scope in the chain can resolve this column.
    pub fn resolves_column(&self, qualifier: Option<&str>, name: &str) -> bool {
        self.column(qualifier, name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_common::{Column, DataType};

    #[test]
    fn param_lookup_walks_scopes() {
        let mut outer = Env::root();
        outer.set_param("ckey", Value::Int(7));
        let mut inner = Env::root().nested_in(&outer);
        assert_eq!(inner.param("CKEY"), Some(Value::Int(7)));
        inner.set_param("ckey", Value::Int(9));
        assert_eq!(inner.param("ckey"), Some(Value::Int(9)));
        assert_eq!(inner.param("nosuch"), None);
    }

    #[test]
    fn column_lookup_walks_scopes() {
        let outer = Env::with_row(
            Schema::new(vec![Column::qualified("c", "custkey", DataType::Int)]),
            Row::new(vec![Value::Int(42)]),
        );
        let inner = Env::with_row(
            Schema::new(vec![Column::new("orderkey", DataType::Int)]),
            Row::new(vec![Value::Int(1)]),
        )
        .nested_in(&outer);
        assert_eq!(inner.column(None, "orderkey"), Some(Value::Int(1)));
        assert_eq!(inner.column(Some("c"), "custkey"), Some(Value::Int(42)));
        assert_eq!(inner.column(None, "custkey"), Some(Value::Int(42)));
        assert!(!inner.resolves_column(None, "nosuch"));
    }
}
