//! Row-at-a-time execution of logical plans.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

use decorr_algebra::schema::{expr_type, infer_schema};
use decorr_algebra::{
    AggCall, AggFunc, ApplyKind, BinaryOp, ColumnRef, JoinKind, ProjectItem, RelExpr, ScalarExpr,
};
use decorr_common::{value::GroupKey, Column, DataType, Error, Result, Row, Schema, Value};
use decorr_storage::Catalog;
use decorr_udf::FunctionRegistry;

use crate::aggregate::BuiltinAccumulator;
use crate::env::Env;
use crate::CatalogProvider;

/// Execution-time configuration knobs.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Minimum combined input size (rows) before an equi-join is executed as a hash join
    /// instead of a nested-loop join. This mirrors the plan switches the paper observes
    /// between 1K and 10K invocations in Experiment 2.
    pub hash_join_threshold: usize,
    /// Safety bound on `WHILE` loop iterations inside UDFs.
    pub max_loop_iterations: usize,
    /// Whether the executor may use hash indexes for equality lookups (the paper's
    /// "default indices on primary and foreign keys").
    pub use_indexes: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            hash_join_threshold: 64,
            max_loop_iterations: 10_000_000,
            use_indexes: true,
        }
    }
}

/// Runtime counters, useful for tests, EXPLAIN ANALYZE-style reporting and the
/// experiment harness (e.g. the number of UDF invocations actually performed).
#[derive(Debug, Default, Clone)]
pub struct ExecStats {
    pub rows_scanned: u64,
    pub index_lookups: u64,
    pub udf_invocations: u64,
    pub subqueries_executed: u64,
    pub hash_joins: u64,
    pub nested_loop_joins: u64,
}

/// A fully materialised query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl ResultSet {
    pub fn empty(schema: Schema) -> ResultSet {
        ResultSet {
            schema,
            rows: vec![],
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a 1×1 result (scalar queries).
    pub fn scalar(&self) -> Result<Value> {
        match self.rows.len() {
            0 => Ok(Value::Null),
            1 => Ok(self.rows[0].values.first().cloned().unwrap_or(Value::Null)),
            n => Err(Error::Execution(format!("scalar query returned {n} rows"))),
        }
    }

    /// Values of the named column, in row order.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(None, name)?;
        Ok(self.rows.iter().map(|r| r.get(idx).clone()).collect())
    }

    /// A canonical representation for order-insensitive comparisons in tests: rows
    /// rendered as strings and sorted.
    pub fn canonical(&self) -> Vec<String> {
        let mut out: Vec<String> = self.rows.iter().map(|r| r.to_string()).collect();
        out.sort();
        out
    }

    /// Like [`ResultSet::canonical`], but projecting only the named columns (used to
    /// compare results of plans whose column order differs).
    pub fn canonical_projection(&self, columns: &[&str]) -> Result<Vec<String>> {
        let indices: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.index_of(None, c))
            .collect::<Result<Vec<_>>>()?;
        let mut out: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let projected: Vec<String> =
                    indices.iter().map(|&i| r.get(i).to_string()).collect();
                format!("({})", projected.join(", "))
            })
            .collect();
        out.sort();
        Ok(out)
    }
}

/// The executor: evaluates logical plans against a catalog and function registry.
pub struct Executor<'a> {
    pub catalog: &'a Catalog,
    pub registry: &'a FunctionRegistry,
    pub config: ExecConfig,
    pub stats: RefCell<ExecStats>,
}

impl<'a> Executor<'a> {
    pub fn new(catalog: &'a Catalog, registry: &'a FunctionRegistry) -> Executor<'a> {
        Executor {
            catalog,
            registry,
            config: ExecConfig::default(),
            stats: RefCell::new(ExecStats::default()),
        }
    }

    pub fn with_config(
        catalog: &'a Catalog,
        registry: &'a FunctionRegistry,
        config: ExecConfig,
    ) -> Executor<'a> {
        Executor {
            catalog,
            registry,
            config,
            stats: RefCell::new(ExecStats::default()),
        }
    }

    pub fn provider(&self) -> CatalogProvider<'_> {
        CatalogProvider::new(self.catalog, self.registry)
    }

    /// A snapshot of the runtime counters.
    pub fn stats_snapshot(&self) -> ExecStats {
        self.stats.borrow().clone()
    }

    /// Executes a plan with no outer context.
    pub fn execute(&self, plan: &RelExpr) -> Result<ResultSet> {
        self.execute_with_env(plan, &Env::root())
    }

    /// Executes a plan in the scope of `outer` (correlated execution).
    pub fn execute_with_env(&self, plan: &RelExpr, outer: &Env) -> Result<ResultSet> {
        match plan {
            RelExpr::Single => Ok(ResultSet {
                schema: Schema::empty(),
                rows: vec![Row::empty()],
            }),
            RelExpr::Scan { table, alias } => self.execute_scan(table, alias.as_deref()),
            RelExpr::Values { schema, rows } => Ok(ResultSet {
                schema: schema.clone(),
                rows: rows.iter().map(|r| Row::new(r.clone())).collect(),
            }),
            RelExpr::Select { input, predicate } => self.execute_select(input, predicate, outer),
            RelExpr::Project {
                input,
                items,
                distinct,
            } => self.execute_project(input, items, *distinct, outer),
            RelExpr::Aggregate {
                input,
                group_by,
                aggregates,
            } => self.execute_aggregate(input, group_by, aggregates, outer),
            RelExpr::Join {
                left,
                right,
                kind,
                condition,
            } => self.execute_join(left, right, *kind, condition.as_ref(), outer),
            RelExpr::Union { left, right, all } => {
                let l = self.execute_with_env(left, outer)?;
                let r = self.execute_with_env(right, outer)?;
                let mut rows = l.rows;
                rows.extend(r.rows);
                if !all {
                    rows = dedupe_rows(rows);
                }
                Ok(ResultSet {
                    schema: l.schema,
                    rows,
                })
            }
            RelExpr::Sort { input, keys } => {
                let input_rs = self.execute_with_env(input, outer)?;
                let mut keyed: Vec<(Vec<Value>, Row)> = input_rs
                    .rows
                    .into_iter()
                    .map(|row| {
                        let env =
                            Env::with_row(input_rs.schema.clone(), row.clone()).nested_in(outer);
                        let key_values: Result<Vec<Value>> =
                            keys.iter().map(|k| self.eval_expr(&k.expr, &env)).collect();
                        key_values.map(|kv| (kv, row))
                    })
                    .collect::<Result<Vec<_>>>()?;
                keyed.sort_by(|(ka, _), (kb, _)| {
                    for (i, key) in keys.iter().enumerate() {
                        let ord = ka[i].total_cmp(&kb[i]);
                        let ord = if key.ascending { ord } else { ord.reverse() };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(ResultSet {
                    schema: input_rs.schema,
                    rows: keyed.into_iter().map(|(_, r)| r).collect(),
                })
            }
            RelExpr::Limit { input, limit } => {
                let mut rs = self.execute_with_env(input, outer)?;
                rs.rows.truncate(*limit);
                Ok(rs)
            }
            RelExpr::Rename { input, alias } => {
                let rs = self.execute_with_env(input, outer)?;
                Ok(ResultSet {
                    schema: rs.schema.with_qualifier(alias),
                    rows: rs.rows,
                })
            }
            RelExpr::Apply {
                left,
                right,
                kind,
                bindings,
            } => self.execute_apply(left, right, *kind, bindings, outer),
            RelExpr::ApplyMerge {
                left,
                right,
                assignments,
            } => self.execute_apply_merge(left, right, assignments, outer),
            RelExpr::ConditionalApplyMerge {
                left,
                predicate,
                then_branch,
                else_branch,
                assignments,
            } => self.execute_conditional_apply_merge(
                left,
                predicate,
                then_branch,
                else_branch,
                assignments,
                outer,
            ),
        }
    }

    fn execute_scan(&self, table: &str, alias: Option<&str>) -> Result<ResultSet> {
        let t = self.catalog.table(table)?;
        self.stats.borrow_mut().rows_scanned += t.row_count() as u64;
        let schema = match alias {
            Some(a) => t.schema().with_qualifier(a),
            None => t.schema().clone(),
        };
        Ok(ResultSet {
            schema,
            rows: t.rows().to_vec(),
        })
    }

    fn execute_select(
        &self,
        input: &RelExpr,
        predicate: &ScalarExpr,
        outer: &Env,
    ) -> Result<ResultSet> {
        // Index access path: σ over a base-table scan with an equality conjunct on an
        // indexed column whose comparison value is computable from the outer scope alone
        // (a constant, a parameter, or an outer correlation variable). This is how the
        // iterative baseline avoids a full scan per UDF invocation, matching the paper's
        // "default indices" setup.
        if self.config.use_indexes {
            if let RelExpr::Scan { table, alias } = input {
                if let Some(result) =
                    self.try_index_scan(table, alias.as_deref(), predicate, outer)?
                {
                    return Ok(result);
                }
            }
        }
        let input_rs = self.execute_with_env(input, outer)?;
        let mut rows = vec![];
        for row in input_rs.rows {
            let env = Env::with_row(input_rs.schema.clone(), row.clone()).nested_in(outer);
            if self.eval_predicate(predicate, &env)? {
                rows.push(row);
            }
        }
        Ok(ResultSet {
            schema: input_rs.schema,
            rows,
        })
    }

    /// Attempts to answer `σ_predicate(scan)` with a hash-index lookup. Returns
    /// `Ok(None)` when no usable index/conjunct exists.
    fn try_index_scan(
        &self,
        table: &str,
        alias: Option<&str>,
        predicate: &ScalarExpr,
        outer: &Env,
    ) -> Result<Option<ResultSet>> {
        let t = self.catalog.table(table)?;
        let schema = match alias {
            Some(a) => t.schema().with_qualifier(a),
            None => t.schema().clone(),
        };
        let conjuncts = predicate.split_conjuncts();
        for (i, conjunct) in conjuncts.iter().enumerate() {
            let ScalarExpr::Binary {
                op: BinaryOp::Eq,
                left,
                right,
            } = conjunct
            else {
                continue;
            };
            // Identify (column-of-this-table, value-expression) in either order.
            for (col_side, val_side) in [(left, right), (right, left)] {
                let ScalarExpr::Column(c) = col_side.as_ref() else {
                    continue;
                };
                if schema.find(c.qualifier.as_deref(), &c.name).is_none() {
                    continue;
                }
                if t.index_on(&c.name).is_none() {
                    continue;
                }
                // The probe value must be computable without this table's row.
                let Ok(key) = self.eval_expr(val_side, outer) else {
                    continue;
                };
                let hits = t
                    .index_lookup(&c.name, &key)
                    .unwrap_or_default()
                    .into_iter()
                    .cloned()
                    .collect::<Vec<Row>>();
                self.stats.borrow_mut().index_lookups += 1;
                // Apply the remaining conjuncts.
                let mut rows = vec![];
                let residual: Vec<ScalarExpr> = conjuncts
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, c)| c.clone())
                    .collect();
                let residual_pred = ScalarExpr::conjunction(residual);
                for row in hits {
                    let env = Env::with_row(schema.clone(), row.clone()).nested_in(outer);
                    if self.eval_predicate(&residual_pred, &env)? {
                        rows.push(row);
                    }
                }
                return Ok(Some(ResultSet { schema, rows }));
            }
        }
        Ok(None)
    }

    fn execute_project(
        &self,
        input: &RelExpr,
        items: &[ProjectItem],
        distinct: bool,
        outer: &Env,
    ) -> Result<ResultSet> {
        let input_rs = self.execute_with_env(input, outer)?;
        let provider = self.provider();
        let schema = Schema::new(
            items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let name = item.output_name(i);
                    let data_type = expr_type(&item.expr, &input_rs.schema, &provider);
                    let qualifier = match (&item.alias, &item.expr) {
                        (None, ScalarExpr::Column(c)) => c.qualifier.clone().or_else(|| {
                            input_rs
                                .schema
                                .find(None, &c.name)
                                .and_then(|i| input_rs.schema.column(i).qualifier.clone())
                        }),
                        _ => None,
                    };
                    Column {
                        qualifier,
                        name,
                        data_type,
                        nullable: true,
                    }
                })
                .collect(),
        );
        let mut rows = vec![];
        for row in input_rs.rows {
            let env = Env::with_row(input_rs.schema.clone(), row).nested_in(outer);
            let values: Result<Vec<Value>> = items
                .iter()
                .map(|item| self.eval_expr(&item.expr, &env))
                .collect();
            rows.push(Row::new(values?));
        }
        if distinct {
            rows = dedupe_rows(rows);
        }
        Ok(ResultSet { schema, rows })
    }

    fn aggregate_output_schema(
        &self,
        group_by: &[ScalarExpr],
        aggregates: &[AggCall],
        input_schema: &Schema,
    ) -> Schema {
        let provider = self.provider();
        let mut columns = vec![];
        for (i, g) in group_by.iter().enumerate() {
            let (qualifier, name) = match g {
                ScalarExpr::Column(c) => (c.qualifier.clone(), c.name.clone()),
                _ => (None, format!("group{i}")),
            };
            columns.push(Column {
                qualifier,
                name,
                data_type: expr_type(g, input_schema, &provider),
                nullable: true,
            });
        }
        for a in aggregates {
            let data_type = match &a.func {
                AggFunc::Count | AggFunc::CountStar => DataType::Int,
                AggFunc::Avg => DataType::Float,
                AggFunc::Sum | AggFunc::Min | AggFunc::Max => a
                    .args
                    .first()
                    .map(|e| expr_type(e, input_schema, &provider))
                    .unwrap_or(DataType::Null),
                AggFunc::UserDefined(name) => {
                    self.registry.return_type(name).unwrap_or(DataType::Null)
                }
            };
            columns.push(Column {
                qualifier: None,
                name: a.alias.clone(),
                data_type,
                nullable: true,
            });
        }
        Schema::new(columns)
    }

    fn execute_aggregate(
        &self,
        input: &RelExpr,
        group_by: &[ScalarExpr],
        aggregates: &[AggCall],
        outer: &Env,
    ) -> Result<ResultSet> {
        let input_rs = self.execute_with_env(input, outer)?;
        let schema = self.aggregate_output_schema(group_by, aggregates, &input_rs.schema);

        enum AccState {
            Builtin(BuiltinAccumulator),
            User {
                name: String,
                state: HashMap<String, Value>,
            },
        }
        let make_accs = |this: &Executor| -> Result<Vec<AccState>> {
            aggregates
                .iter()
                .map(|a| match &a.func {
                    AggFunc::UserDefined(name) => {
                        let def = this.registry.aggregate(name)?;
                        let mut state = HashMap::new();
                        for (var, _, init) in &def.state {
                            state.insert(var.clone(), init.clone());
                        }
                        Ok(AccState::User {
                            name: name.clone(),
                            state,
                        })
                    }
                    builtin => Ok(AccState::Builtin(BuiltinAccumulator::new(builtin))),
                })
                .collect()
        };

        // Group rows.
        let mut groups: Vec<(Vec<Value>, Vec<AccState>)> = vec![];
        let mut group_index: HashMap<Vec<GroupKey>, usize> = HashMap::new();
        for row in &input_rs.rows {
            let env = Env::with_row(input_rs.schema.clone(), row.clone()).nested_in(outer);
            let group_values: Result<Vec<Value>> =
                group_by.iter().map(|g| self.eval_expr(g, &env)).collect();
            let group_values = group_values?;
            let key: Vec<GroupKey> = group_values.iter().map(|v| v.group_key()).collect();
            let idx = match group_index.get(&key) {
                Some(&i) => i,
                None => {
                    groups.push((group_values, make_accs(self)?));
                    group_index.insert(key, groups.len() - 1);
                    groups.len() - 1
                }
            };
            // Accumulate.
            for (acc, call) in groups[idx].1.iter_mut().zip(aggregates.iter()) {
                let args: Result<Vec<Value>> =
                    call.args.iter().map(|a| self.eval_expr(a, &env)).collect();
                let args = args?;
                match acc {
                    AccState::Builtin(b) => b.update(&args),
                    AccState::User { name, state } => {
                        self.accumulate_user_aggregate(name, state, &args)?;
                    }
                }
            }
        }
        // A scalar aggregate (no GROUP BY) over an empty input still produces one row.
        if groups.is_empty() && group_by.is_empty() {
            groups.push((vec![], make_accs(self)?));
        }
        let mut rows = vec![];
        for (group_values, accs) in groups {
            let mut values = group_values;
            for acc in accs {
                let v = match acc {
                    AccState::Builtin(b) => b.finalize(),
                    AccState::User { name, state } => {
                        self.terminate_user_aggregate(&name, &state)?
                    }
                };
                values.push(v);
            }
            rows.push(Row::new(values));
        }
        Ok(ResultSet { schema, rows })
    }

    fn execute_join(
        &self,
        left: &RelExpr,
        right: &RelExpr,
        kind: JoinKind,
        condition: Option<&ScalarExpr>,
        outer: &Env,
    ) -> Result<ResultSet> {
        let left_rs = self.execute_with_env(left, outer)?;
        let right_rs = self.execute_with_env(right, outer)?;
        let out_schema = match kind {
            JoinKind::LeftSemi | JoinKind::LeftAnti => left_rs.schema.clone(),
            JoinKind::LeftOuter => left_rs.schema.join(&right_rs.schema.as_nullable()),
            _ => left_rs.schema.join(&right_rs.schema),
        };
        let combined_schema = left_rs.schema.join(&right_rs.schema);

        // Try to extract hash-join keys from the condition.
        let (equi_keys, residual) = condition
            .map(|c| split_equi_conjuncts(c, &left_rs.schema, &right_rs.schema))
            .unwrap_or((vec![], vec![]));
        let residual_pred = ScalarExpr::conjunction(residual);
        let big_enough =
            left_rs.rows.len() + right_rs.rows.len() >= self.config.hash_join_threshold;

        let use_hash = !equi_keys.is_empty() && big_enough;
        if use_hash {
            self.stats.borrow_mut().hash_joins += 1;
        } else {
            self.stats.borrow_mut().nested_loop_joins += 1;
        }

        let mut rows = vec![];
        if use_hash {
            // Build on the right input.
            let mut table: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
            for (i, rrow) in right_rs.rows.iter().enumerate() {
                let env = Env::with_row(right_rs.schema.clone(), rrow.clone()).nested_in(outer);
                let mut key = vec![];
                let mut has_null = false;
                for (_, rk) in &equi_keys {
                    let v = self.eval_expr(rk, &env)?;
                    if v.is_null() {
                        has_null = true;
                        break;
                    }
                    key.push(v.group_key());
                }
                if !has_null {
                    table.entry(key).or_default().push(i);
                }
            }
            for lrow in &left_rs.rows {
                let lenv = Env::with_row(left_rs.schema.clone(), lrow.clone()).nested_in(outer);
                let mut key = vec![];
                let mut has_null = false;
                for (lk, _) in &equi_keys {
                    let v = self.eval_expr(lk, &lenv)?;
                    if v.is_null() {
                        has_null = true;
                        break;
                    }
                    key.push(v.group_key());
                }
                let matches: &[usize] = if has_null {
                    &[]
                } else {
                    table.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
                };
                let mut matched = false;
                for &ri in matches {
                    let combined = lrow.concat(&right_rs.rows[ri]);
                    let env =
                        Env::with_row(combined_schema.clone(), combined.clone()).nested_in(outer);
                    if self.eval_predicate(&residual_pred, &env)? {
                        matched = true;
                        match kind {
                            JoinKind::LeftSemi => break,
                            JoinKind::LeftAnti => break,
                            _ => rows.push(combined),
                        }
                    }
                }
                self.finish_left_row(kind, matched, lrow, right_rs.schema.len(), &mut rows);
            }
        } else {
            for lrow in &left_rs.rows {
                let mut matched = false;
                for rrow in &right_rs.rows {
                    let combined = lrow.concat(rrow);
                    let env =
                        Env::with_row(combined_schema.clone(), combined.clone()).nested_in(outer);
                    let pass = match condition {
                        Some(c) => self.eval_predicate(c, &env)?,
                        None => true,
                    };
                    if pass {
                        matched = true;
                        match kind {
                            JoinKind::LeftSemi | JoinKind::LeftAnti => break,
                            _ => rows.push(combined),
                        }
                    }
                }
                self.finish_left_row(kind, matched, lrow, right_rs.schema.len(), &mut rows);
            }
        }
        Ok(ResultSet {
            schema: out_schema,
            rows,
        })
    }

    /// Emits the left-only / null-extended outputs for outer, semi and anti joins.
    fn finish_left_row(
        &self,
        kind: JoinKind,
        matched: bool,
        lrow: &Row,
        right_width: usize,
        rows: &mut Vec<Row>,
    ) {
        match kind {
            JoinKind::LeftOuter if !matched => rows.push(lrow.concat(&Row::nulls(right_width))),
            JoinKind::LeftSemi if matched => rows.push(lrow.clone()),
            JoinKind::LeftAnti if !matched => rows.push(lrow.clone()),
            _ => {}
        }
    }

    fn execute_apply(
        &self,
        left: &RelExpr,
        right: &RelExpr,
        kind: ApplyKind,
        bindings: &[decorr_algebra::plan::ParamBinding],
        outer: &Env,
    ) -> Result<ResultSet> {
        let left_rs = self.execute_with_env(left, outer)?;
        let provider = self.provider();
        let right_schema = infer_schema(right, &provider).unwrap_or_else(|_| Schema::empty());
        let out_schema = match kind {
            ApplyKind::LeftSemi | ApplyKind::LeftAnti => left_rs.schema.clone(),
            ApplyKind::LeftOuter => left_rs.schema.join(&right_schema.as_nullable()),
            ApplyKind::Cross => left_rs.schema.join(&right_schema),
        };
        let mut rows = vec![];
        for lrow in &left_rs.rows {
            let mut env = Env::with_row(left_rs.schema.clone(), lrow.clone()).nested_in(outer);
            for b in bindings {
                let v = self.eval_expr(&b.value, &env)?;
                env.set_param(&b.param, v);
            }
            let inner = self.execute_with_env(right, &env)?;
            match kind {
                ApplyKind::Cross => {
                    for rrow in inner.rows {
                        rows.push(lrow.concat(&rrow));
                    }
                }
                ApplyKind::LeftOuter => {
                    if inner.rows.is_empty() {
                        rows.push(lrow.concat(&Row::nulls(right_schema.len())));
                    } else {
                        for rrow in inner.rows {
                            rows.push(lrow.concat(&rrow));
                        }
                    }
                }
                ApplyKind::LeftSemi => {
                    if !inner.rows.is_empty() {
                        rows.push(lrow.clone());
                    }
                }
                ApplyKind::LeftAnti => {
                    if inner.rows.is_empty() {
                        rows.push(lrow.clone());
                    }
                }
            }
        }
        Ok(ResultSet {
            schema: out_schema,
            rows,
        })
    }

    fn execute_apply_merge(
        &self,
        left: &RelExpr,
        right: &RelExpr,
        assignments: &[decorr_algebra::plan::MergeAssignment],
        outer: &Env,
    ) -> Result<ResultSet> {
        let left_rs = self.execute_with_env(left, outer)?;
        let mut rows = vec![];
        for lrow in &left_rs.rows {
            let env = Env::with_row(left_rs.schema.clone(), lrow.clone()).nested_in(outer);
            let inner = self.execute_with_env(right, &env)?;
            rows.push(self.merge_row(lrow, &left_rs.schema, &inner, assignments)?);
        }
        Ok(ResultSet {
            schema: left_rs.schema,
            rows,
        })
    }

    fn execute_conditional_apply_merge(
        &self,
        left: &RelExpr,
        predicate: &ScalarExpr,
        then_branch: &RelExpr,
        else_branch: &RelExpr,
        assignments: &[decorr_algebra::plan::MergeAssignment],
        outer: &Env,
    ) -> Result<ResultSet> {
        let left_rs = self.execute_with_env(left, outer)?;
        let mut rows = vec![];
        for lrow in &left_rs.rows {
            let env = Env::with_row(left_rs.schema.clone(), lrow.clone()).nested_in(outer);
            let branch = if self.eval_predicate(predicate, &env)? {
                then_branch
            } else {
                else_branch
            };
            let inner = self.execute_with_env(branch, &env)?;
            rows.push(self.merge_row(lrow, &left_rs.schema, &inner, assignments)?);
        }
        Ok(ResultSet {
            schema: left_rs.schema,
            rows,
        })
    }

    /// Implements the Apply-Merge assignment semantics: the inner result must have at
    /// most one tuple; its attributes are assigned into the outer tuple. An empty inner
    /// result retains the existing values (the paper notes this behaviour is
    /// system-specific; we follow the "no assignment" interpretation).
    fn merge_row(
        &self,
        lrow: &Row,
        left_schema: &Schema,
        inner: &ResultSet,
        assignments: &[decorr_algebra::plan::MergeAssignment],
    ) -> Result<Row> {
        if inner.rows.len() > 1 {
            return Err(Error::Execution(format!(
                "assignment source returned {} rows (expected at most one)",
                inner.rows.len()
            )));
        }
        let mut out = lrow.clone();
        if let Some(inner_row) = inner.rows.first() {
            if assignments.is_empty() {
                // Default: merge all common attributes.
                for (ri, rcol) in inner.schema.columns.iter().enumerate() {
                    if let Some(li) = left_schema.find(None, &rcol.name) {
                        out.values[li] = inner_row.get(ri).clone();
                    }
                }
            } else {
                for a in assignments {
                    let li = left_schema.index_of(None, &a.target)?;
                    let ri = inner.schema.index_of(None, &a.source)?;
                    out.values[li] = inner_row.get(ri).clone();
                }
            }
        }
        Ok(out)
    }
}

/// Splits a join condition into hash-join key pairs `(left_key, right_key)` and residual
/// conjuncts. A conjunct qualifies as a key pair when it is an equality whose two sides
/// reference columns of exactly one (different) input each.
fn split_equi_conjuncts(
    condition: &ScalarExpr,
    left: &Schema,
    right: &Schema,
) -> (Vec<(ScalarExpr, ScalarExpr)>, Vec<ScalarExpr>) {
    let mut keys = vec![];
    let mut residual = vec![];
    for conjunct in condition.split_conjuncts() {
        if let ScalarExpr::Binary {
            op: BinaryOp::Eq,
            left: a,
            right: b,
        } = &conjunct
        {
            let a_side = side_of(a, left, right);
            let b_side = side_of(b, left, right);
            match (a_side, b_side) {
                (Side::Left, Side::Right) => {
                    keys.push((a.as_ref().clone(), b.as_ref().clone()));
                    continue;
                }
                (Side::Right, Side::Left) => {
                    keys.push((b.as_ref().clone(), a.as_ref().clone()));
                    continue;
                }
                _ => {}
            }
        }
        residual.push(conjunct);
    }
    (keys, residual)
}

#[derive(PartialEq, Clone, Copy)]
enum Side {
    Left,
    Right,
    Neither,
}

/// Which input's columns an expression references (exclusively).
fn side_of(expr: &ScalarExpr, left: &Schema, right: &Schema) -> Side {
    let mut cols: Vec<ColumnRef> = vec![];
    expr.collect_columns(&mut cols);
    if cols.is_empty() {
        return Side::Neither;
    }
    let mut params = vec![];
    expr.collect_params(&mut params);
    if !params.is_empty() || expr.contains_subquery() {
        return Side::Neither;
    }
    let all_left = cols
        .iter()
        .all(|c| left.find(c.qualifier.as_deref(), &c.name).is_some());
    let all_right = cols
        .iter()
        .all(|c| right.find(c.qualifier.as_deref(), &c.name).is_some());
    match (all_left, all_right) {
        (true, false) => Side::Left,
        (false, true) => Side::Right,
        _ => Side::Neither,
    }
}

/// Removes duplicate rows (used by UNION and DISTINCT) preserving first-seen order.
fn dedupe_rows(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: HashSet<Vec<GroupKey>> = HashSet::new();
    let mut out = vec![];
    for row in rows {
        let key: Vec<GroupKey> = row.values.iter().map(|v| v.group_key()).collect();
        if seen.insert(key) {
            out.push(row);
        }
    }
    out
}
