//! Execution of logical plans: a row-at-a-time serial path, a morsel-driven parallel
//! path dispatching to the persistent [`crate::parallel::WorkerPool`], and a pipelined
//! (operator-fusing) path that streams each morsel through adjacent
//! scan→filter→project chains in one task — all selected by [`ExecConfig`].

use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use decorr_algebra::schema::{expr_type, infer_schema};
use decorr_algebra::{
    AggCall, AggFunc, ApplyKind, BinaryOp, ColumnRef, JoinKind, ProjectItem, RelExpr, ScalarExpr,
};
use decorr_common::{
    normalize_ident, value::GroupKey, Column, DataType, Error, Result, Row, Schema, Value,
};
use decorr_storage::{Catalog, ShardSet, Table};
use decorr_udf::FunctionRegistry;

use crate::aggregate::BuiltinAccumulator;
use crate::env::Env;
use crate::memo::{fingerprint_invocation, MemoEpoch, UdfMemo, NO_EPOCH};
use crate::parallel::WorkerPool;
use crate::stats::{
    AtomicExecStats, CardinalityCollector, ExecTrace, NodeCardinality, TraceCollector,
    UdfSelectivity, UdfSelectivityCollector, UdfTiming, UdfTimingCollector,
};
use crate::CatalogProvider;

pub use crate::stats::ExecStats;

/// Execution-time configuration knobs.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Minimum combined input size (rows) before an equi-join is executed as a hash join
    /// instead of a nested-loop join. This mirrors the plan switches the paper observes
    /// between 1K and 10K invocations in Experiment 2.
    pub hash_join_threshold: usize,
    /// Safety bound on `WHILE` loop iterations inside UDFs.
    pub max_loop_iterations: usize,
    /// Whether the executor may use hash indexes for equality lookups (the paper's
    /// "default indices on primary and foreign keys").
    pub use_indexes: bool,
    /// Worker-pool size for morsel-driven parallel execution. `1` (the default) keeps
    /// every operator on the original serial row-at-a-time path; `n > 1` lets scans,
    /// filters, projections, hash joins, hash aggregation and the Apply family fan
    /// morsels out to `n` persistent pool workers. Parallel runs produce byte-identical
    /// results to serial runs (morsel outputs merge in morsel order and aggregation
    /// partitions by group key, preserving per-group accumulation order).
    ///
    /// Values are clamped to `≥ 1` by [`Executor::with_config`] /
    /// [`ExecConfig::normalized`].
    pub parallelism: usize,
    /// Rows per morsel. An operator goes parallel only when its input spans more than
    /// one morsel, so small inputs never pay the fan-out overhead. Clamped to `≥ 1`
    /// (a zero morsel size must not degenerate into per-row tasks).
    pub morsel_size: usize,
    /// Whether adjacent scan→filter→project chains (including the chains feeding Apply
    /// operators) are fused so each morsel flows through the whole chain in one task
    /// instead of materializing between operators. Fusion only changes *how* rows move,
    /// never the rows themselves; it is exposed as a knob so benches can compare the
    /// pipelined and materialized execution styles. Ignored at `parallelism == 1`.
    pub pipeline_fusion: bool,
    /// Record the actual output cardinality of every executed plan node (keyed by the
    /// node's structural fingerprint) into the executor's
    /// [`CardinalityCollector`]. Off by default:
    /// this is the estimate-vs-actual diagnostic used by `EXPLAIN ANALYZE`, the stats
    /// bench and accuracy tests, and fingerprinting every node would tax the hot path.
    pub collect_cardinalities: bool,
    /// Batched + deduplicated UDF invocation: parallel filters/projections over
    /// pure-UDF sites first collect the distinct argument tuples of a morsel batch,
    /// evaluate each distinct tuple once on the worker pool, and let per-row
    /// evaluation pick the results out of the per-query dedup cache. The engine also
    /// keys the per-query dedup cache on this flag. Results are byte-identical either
    /// way; this only changes how many times a pure UDF body runs.
    pub udf_batching: bool,
    /// Cross-query memoization of pure-UDF results through the database-owned memo
    /// cache. The engine attaches the memo only when this is on.
    pub udf_memoization: bool,
    /// Reorder the UDF-bearing conjuncts of a filter by measured cost / observed
    /// selectivity (cheapest-most-selective first), short-circuiting the rest of the
    /// conjunction. Applies only when every UDF in the conjunction is pure; kept rows
    /// are identical under SQL three-valued logic, though *which* conjunct surfaces a
    /// runtime error first can change.
    pub cost_ordered_predicates: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            hash_join_threshold: 64,
            max_loop_iterations: 10_000_000,
            use_indexes: true,
            parallelism: 1,
            morsel_size: 1024,
            pipeline_fusion: true,
            collect_cardinalities: false,
            udf_batching: true,
            udf_memoization: true,
            cost_ordered_predicates: true,
        }
    }
}

impl ExecConfig {
    /// Returns this configuration with the worker-pool size set (builder style).
    pub fn with_parallelism(mut self, parallelism: usize) -> ExecConfig {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Returns this configuration with out-of-range knobs clamped into their valid
    /// domains (`parallelism ≥ 1`, `morsel_size ≥ 1`). Every executor applies this at
    /// construction, so a degenerate literal like `ExecConfig { morsel_size: 0, .. }`
    /// cannot push `should_parallelize` into one-row-morsel behaviour.
    pub fn normalized(mut self) -> ExecConfig {
        self.parallelism = self.parallelism.max(1);
        self.morsel_size = self.morsel_size.max(1);
        self
    }
}

/// A fully materialised query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl ResultSet {
    pub fn empty(schema: Schema) -> ResultSet {
        ResultSet {
            schema,
            rows: vec![],
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a 1×1 result (scalar queries).
    pub fn scalar(&self) -> Result<Value> {
        match self.rows.len() {
            0 => Ok(Value::Null),
            1 => Ok(self.rows[0].values.first().cloned().unwrap_or(Value::Null)),
            n => Err(Error::Execution(format!("scalar query returned {n} rows"))),
        }
    }

    /// Values of the named column, in row order.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(None, name)?;
        Ok(self.rows.iter().map(|r| r.get(idx).clone()).collect())
    }

    /// A canonical representation for order-insensitive comparisons in tests: rows
    /// rendered as strings and sorted.
    pub fn canonical(&self) -> Vec<String> {
        let mut out: Vec<String> = self.rows.iter().map(|r| r.to_string()).collect();
        out.sort();
        out
    }

    /// Like [`ResultSet::canonical`], but projecting only the named columns (used to
    /// compare results of plans whose column order differs).
    pub fn canonical_projection(&self, columns: &[&str]) -> Result<Vec<String>> {
        let indices: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.index_of(None, c))
            .collect::<Result<Vec<_>>>()?;
        let mut out: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let projected: Vec<String> =
                    indices.iter().map(|&i| r.get(i).to_string()).collect();
                format!("({})", projected.join(", "))
            })
            .collect();
        out.sort();
        Ok(out)
    }
}

/// The executor: evaluates logical plans against a catalog and function registry.
///
/// The executor owns `Arc` handles to its catalog and registry (rather than borrowing
/// them), so the `'static` batch jobs it hands to the persistent [`WorkerPool`] can
/// carry a serial executor view across thread lifetimes without `unsafe`. It is `Sync`:
/// its only shared mutable state is the lock-free [`AtomicExecStats`] and the
/// per-operator [`TraceCollector`], so morsel workers evaluate through `&Executor`
/// concurrently.
pub struct Executor {
    pub catalog: Arc<Catalog>,
    pub registry: Arc<FunctionRegistry>,
    pub config: ExecConfig,
    pub stats: Arc<AtomicExecStats>,
    pub(crate) trace: Arc<TraceCollector>,
    /// Per-node actual cardinalities (populated when
    /// `ExecConfig::collect_cardinalities` is on).
    pub(crate) cardinalities: Arc<CardinalityCollector>,
    /// Measured wall-clock per UDF invocation (always on; the engine's feedback loop
    /// reads this after every query).
    pub(crate) udf_timings: Arc<UdfTimingCollector>,
    /// Observed pass/fail outcomes of UDF-bearing conjuncts (populated by the
    /// cost-ordered filter path; the engine folds it into the feedback store).
    pub(crate) udf_selectivity: Arc<UdfSelectivityCollector>,
    /// Database-owned cross-query memo for pure-UDF results (attached by the engine
    /// when `ExecConfig::udf_memoization` is on; checked first on every pure call).
    pub(crate) memo: Option<Arc<UdfMemo>>,
    /// Per-query dedup cache for pure-UDF results: repeated argument tuples within
    /// one execution evaluate once. Also the hand-off buffer of the batched
    /// invocation path (batch evaluation fills it, per-row evaluation drains it).
    pub(crate) dedup: Option<Arc<UdfMemo>>,
    /// Learned per-UDF runtime profile (mean evaluation cost, observed predicate
    /// selectivity) used to order UDF conjuncts; from the engine's feedback store.
    pub(crate) udf_hints: Arc<BTreeMap<String, UdfRuntimeHint>>,
    /// Per-UDF memo epochs for this query's pinned catalog/registry snapshot
    /// (attached by the engine alongside the shared memo). A UDF absent from the map
    /// uses [`NO_EPOCH`] — the standalone-executor case where nothing mutates.
    pub(crate) memo_epochs: Arc<BTreeMap<String, MemoEpoch>>,
    /// The worker pool parallel operators dispatch to: the engine-attached shared pool
    /// (persistent across queries) when present, otherwise a pool created lazily for
    /// this executor and dropped with it.
    pool: OnceLock<Arc<WorkerPool>>,
}

/// Learned runtime profile of one UDF, fed from the engine's feedback store into the
/// executor's cost-ordered predicate evaluation.
#[derive(Debug, Clone, Copy)]
pub struct UdfRuntimeHint {
    /// Mean measured wall-clock of one *evaluated* invocation, in seconds.
    pub mean_seconds: f64,
    /// Observed fraction of rows passing the UDF-bearing conjunct (0.0–1.0).
    pub selectivity: f64,
}

impl Executor {
    pub fn new(catalog: Arc<Catalog>, registry: Arc<FunctionRegistry>) -> Executor {
        Executor::with_config(catalog, registry, ExecConfig::default())
    }

    pub fn with_config(
        catalog: Arc<Catalog>,
        registry: Arc<FunctionRegistry>,
        config: ExecConfig,
    ) -> Executor {
        Executor {
            catalog,
            registry,
            config: config.normalized(),
            stats: Arc::new(AtomicExecStats::default()),
            trace: Arc::new(TraceCollector::default()),
            cardinalities: Arc::new(CardinalityCollector::default()),
            udf_timings: Arc::new(UdfTimingCollector::default()),
            udf_selectivity: Arc::new(UdfSelectivityCollector::default()),
            memo: None,
            dedup: None,
            udf_hints: Arc::new(BTreeMap::new()),
            memo_epochs: Arc::new(BTreeMap::new()),
            pool: OnceLock::new(),
        }
    }

    /// Attaches a shared worker pool (builder style). The engine calls this with its
    /// per-database pool so worker threads persist across queries; executors without an
    /// attached pool lazily create their own on first parallel dispatch.
    pub fn with_worker_pool(self, pool: Arc<WorkerPool>) -> Executor {
        let _ = self.pool.set(pool);
        self
    }

    /// Attaches the engine-owned cross-query memo cache (builder style). Entries are
    /// epoch-stamped, so pair this with [`with_memo_epochs`](Executor::with_memo_epochs)
    /// when registry/catalog state can change between queries.
    pub fn with_udf_memo(mut self, memo: Arc<UdfMemo>) -> Executor {
        self.memo = Some(memo);
        self
    }

    /// Attaches the per-UDF memo epochs computed from this query's pinned
    /// catalog/registry snapshot (builder style).
    pub fn with_memo_epochs(mut self, epochs: Arc<BTreeMap<String, MemoEpoch>>) -> Executor {
        self.memo_epochs = epochs;
        self
    }

    /// The memo epoch to stamp/expect for one (normalized) UDF name.
    pub(crate) fn memo_epoch(&self, key: &str) -> MemoEpoch {
        self.memo_epochs.get(key).copied().unwrap_or(NO_EPOCH)
    }

    /// Attaches a per-query dedup cache (builder style): repeated pure-UDF argument
    /// tuples within this execution evaluate once.
    pub fn with_udf_dedup(mut self, dedup: Arc<UdfMemo>) -> Executor {
        self.dedup = Some(dedup);
        self
    }

    /// Attaches learned per-UDF runtime hints for cost-ordered predicate evaluation
    /// (builder style).
    pub fn with_udf_hints(mut self, hints: Arc<BTreeMap<String, UdfRuntimeHint>>) -> Executor {
        self.udf_hints = hints;
        self
    }

    /// The pool this executor dispatches batches to (lazily created when none was
    /// attached).
    pub(crate) fn worker_pool(&self) -> &Arc<WorkerPool> {
        self.pool.get_or_init(|| Arc::new(WorkerPool::new(0)))
    }

    /// A serial view of this executor for one morsel worker: same catalog, registry,
    /// counters and trace, but `parallelism = 1` so plan execution *inside* a morsel
    /// (Apply inner plans, subqueries, UDF bodies) never re-enters the worker pool.
    pub(crate) fn worker_view(&self) -> Executor {
        Executor {
            catalog: Arc::clone(&self.catalog),
            registry: Arc::clone(&self.registry),
            config: ExecConfig {
                parallelism: 1,
                ..self.config.clone()
            },
            stats: Arc::clone(&self.stats),
            trace: Arc::clone(&self.trace),
            cardinalities: Arc::clone(&self.cardinalities),
            udf_timings: Arc::clone(&self.udf_timings),
            udf_selectivity: Arc::clone(&self.udf_selectivity),
            memo: self.memo.clone(),
            dedup: self.dedup.clone(),
            udf_hints: Arc::clone(&self.udf_hints),
            memo_epochs: Arc::clone(&self.memo_epochs),
            pool: OnceLock::new(),
        }
    }

    pub fn provider(&self) -> CatalogProvider<'_> {
        CatalogProvider::new(&self.catalog, &self.registry)
    }

    /// A snapshot of the runtime counters.
    pub fn stats_snapshot(&self) -> ExecStats {
        self.stats.snapshot()
    }

    /// A snapshot of the per-operator execution trace (morsels dispatched, per-worker
    /// row spread, wall clock) — the execution-side mirror of the optimizer's per-pass
    /// report. Empty for fully serial executions.
    pub fn trace_snapshot(&self) -> ExecTrace {
        self.trace.snapshot()
    }

    /// The per-node actual cardinalities recorded while
    /// `ExecConfig::collect_cardinalities` was on (empty otherwise).
    pub fn cardinality_snapshot(&self) -> Vec<NodeCardinality> {
        self.cardinalities.snapshot()
    }

    /// Measured wall-clock per UDF, accumulated over every invocation this executor
    /// performed (empty for set-oriented executions, which invoke no UDFs).
    pub fn udf_timing_snapshot(&self) -> Vec<UdfTiming> {
        self.udf_timings.snapshot()
    }

    /// Observed pass/fail outcomes of UDF-bearing conjuncts (populated only by the
    /// cost-ordered filter path; the engine folds it into the feedback store).
    pub fn udf_selectivity_snapshot(&self) -> Vec<UdfSelectivity> {
        self.udf_selectivity.snapshot()
    }

    /// Executes a plan with no outer context.
    pub fn execute(&self, plan: &RelExpr) -> Result<ResultSet> {
        self.execute_with_env(plan, &Env::root())
    }

    /// Executes a plan in the scope of `outer` (correlated execution).
    pub fn execute_with_env(&self, plan: &RelExpr, outer: &Env) -> Result<ResultSet> {
        if !self.config.collect_cardinalities {
            return self.execute_dispatch(plan, outer);
        }
        // Diagnostic mode: record every node's actual output cardinality, keyed by
        // the node's structural fingerprint. Children recurse through this same entry
        // point, so one hook covers the whole tree (fused chains record at the chain
        // root — the per-layer actuals are the fused output by construction).
        let result = self.execute_dispatch(plan, outer)?;
        self.cardinalities.record(plan, result.rows.len() as u64);
        Ok(result)
    }

    /// Operator dispatch (the pre-instrumentation `execute_with_env` body).
    fn execute_dispatch(&self, plan: &RelExpr, outer: &Env) -> Result<ResultSet> {
        // Pipelined execution: fuse adjacent filter/project layers (and the chains
        // feeding Apply operators, which execute their left input through this same
        // entry point) so each morsel flows through the whole chain in one task. The
        // serial path (`parallelism == 1`) stays byte-for-byte the original executor.
        if self.config.parallelism > 1 && self.config.pipeline_fusion {
            if let Some((layers, base)) = fusible_chain(plan) {
                return self.execute_pipelined(&layers, base, outer);
            }
        }
        match plan {
            RelExpr::Single => Ok(ResultSet {
                schema: Schema::empty(),
                rows: vec![Row::empty()],
            }),
            RelExpr::Scan { table, alias } => self.execute_scan(table, alias.as_deref()),
            RelExpr::Values { schema, rows } => Ok(ResultSet {
                schema: schema.clone(),
                rows: rows.iter().map(|r| Row::new(r.clone())).collect(),
            }),
            RelExpr::Select { input, predicate } => self.execute_select(input, predicate, outer),
            RelExpr::Project {
                input,
                items,
                distinct,
            } => self.execute_project(input, items, *distinct, outer),
            RelExpr::Aggregate {
                input,
                group_by,
                aggregates,
            } => self.execute_aggregate(input, group_by, aggregates, outer),
            RelExpr::Join {
                left,
                right,
                kind,
                condition,
            } => self.execute_join(left, right, *kind, condition.as_ref(), outer),
            RelExpr::Union { left, right, all } => {
                let l = self.execute_with_env(left, outer)?;
                let r = self.execute_with_env(right, outer)?;
                let mut rows = l.rows;
                rows.extend(r.rows);
                if !all {
                    rows = dedupe_rows(rows);
                }
                Ok(ResultSet {
                    schema: l.schema,
                    rows,
                })
            }
            RelExpr::Sort { input, keys } => {
                let input_rs = self.execute_with_env(input, outer)?;
                let mut keyed: Vec<(Vec<Value>, Row)> = input_rs
                    .rows
                    .into_iter()
                    .map(|row| {
                        let env =
                            Env::with_row(input_rs.schema.clone(), row.clone()).nested_in(outer);
                        let key_values: Result<Vec<Value>> =
                            keys.iter().map(|k| self.eval_expr(&k.expr, &env)).collect();
                        key_values.map(|kv| (kv, row))
                    })
                    .collect::<Result<Vec<_>>>()?;
                keyed.sort_by(|(ka, _), (kb, _)| {
                    for (i, key) in keys.iter().enumerate() {
                        let ord = ka[i].total_cmp(&kb[i]);
                        let ord = if key.ascending { ord } else { ord.reverse() };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(ResultSet {
                    schema: input_rs.schema,
                    rows: keyed.into_iter().map(|(_, r)| r).collect(),
                })
            }
            RelExpr::Limit { input, limit } => {
                let mut rs = self.execute_with_env(input, outer)?;
                rs.rows.truncate(*limit);
                Ok(rs)
            }
            RelExpr::Rename { input, alias } => {
                let rs = self.execute_with_env(input, outer)?;
                Ok(ResultSet {
                    schema: rs.schema.with_qualifier(alias),
                    rows: rs.rows,
                })
            }
            RelExpr::Apply {
                left,
                right,
                kind,
                bindings,
            } => self.execute_apply(left, right, *kind, bindings, outer),
            RelExpr::ApplyMerge {
                left,
                right,
                assignments,
            } => self.execute_apply_merge(left, right, assignments, outer),
            RelExpr::ConditionalApplyMerge {
                left,
                predicate,
                then_branch,
                else_branch,
                assignments,
            } => self.execute_conditional_apply_merge(
                left,
                predicate,
                then_branch,
                else_branch,
                assignments,
                outer,
            ),
        }
    }

    fn execute_scan(&self, table: &str, alias: Option<&str>) -> Result<ResultSet> {
        let t = self.catalog.table(table)?;
        self.stats.add_rows_scanned(t.row_count() as u64);
        let schema = match alias {
            Some(a) => t.schema().with_qualifier(a),
            None => t.schema().clone(),
        };
        let len = t.row_count();
        let rows = if self.should_parallelize(len) {
            // Materialising a base table is a row-by-row deep copy (each Row owns its
            // values); fan the copy out morsel-wise. The job captures the table's
            // shard set — shared `Arc` handles, no intermediate copy-out.
            let set = t.shard_set();
            let chunks =
                self.run_morsels(&format!("scan({table})"), 0, len, move |_view, range| {
                    Ok(set.collect_range(range))
                })?;
            concat_rows(chunks, len)
        } else {
            t.scan().collect_rows()
        };
        Ok(ResultSet { schema, rows })
    }

    fn execute_select(
        &self,
        input: &RelExpr,
        predicate: &ScalarExpr,
        outer: &Env,
    ) -> Result<ResultSet> {
        // Index access path: σ over a base-table scan with an equality conjunct on an
        // indexed column whose comparison value is computable from the outer scope alone
        // (a constant, a parameter, or an outer correlation variable). This is how the
        // iterative baseline avoids a full scan per UDF invocation, matching the paper's
        // "default indices" setup.
        if self.config.use_indexes {
            if let RelExpr::Scan { table, alias } = input {
                if let Some(result) =
                    self.try_index_scan(table, alias.as_deref(), predicate, outer)?
                {
                    return Ok(result);
                }
            }
        }
        // σ over a base-table scan draws straight from the table's shard set instead
        // of materializing the scan first, and drops shards whose cached min/max
        // summary proves no row can pass the predicate's numeric bounds.
        let (schema, source) = match input {
            RelExpr::Scan { table, alias } => {
                let t = self.catalog.table(table)?;
                let schema = match alias {
                    Some(a) => t.schema().with_qualifier(a),
                    None => t.schema().clone(),
                };
                let (set, pruned) = self.pruned_scan_set(t, predicate, &schema);
                if pruned > 0 {
                    self.stats.add_shards_pruned(pruned);
                }
                self.stats.add_rows_scanned(set.len() as u64);
                if self.config.collect_cardinalities {
                    // The scan no longer runs as its own node; mirror the actual it
                    // would have recorded (the kept shards' rows).
                    self.cardinalities.record(input, set.len() as u64);
                }
                (schema, RowSource::Shards(set))
            }
            _ => {
                let rs = self.execute_with_env(input, outer)?;
                (rs.schema, RowSource::Rows(Arc::new(rs.rows)))
            }
        };
        let filter = self.prepare_filter(predicate);
        if self.should_parallelize(source.len()) {
            self.batch_eval_udf_calls(&filter.strict_roots(), source.clone(), &schema, outer)?;
            let chunks = {
                let source = source.clone();
                let schema = schema.clone();
                let outer = outer.clone();
                self.run_morsels("filter", 0, source.len(), move |view, range| {
                    let mut kept = vec![];
                    let mut outcomes = filter.counters();
                    for row in source.iter_range(range) {
                        let env = Env::with_row(schema.clone(), row.clone()).nested_in(&outer);
                        if filter.eval(view, &env, &mut outcomes)? {
                            kept.push(row.clone());
                        }
                    }
                    filter.flush(view, &outcomes);
                    Ok(kept)
                })?
            };
            return Ok(ResultSet {
                schema,
                rows: concat_rows(chunks, 0),
            });
        }
        let mut rows = vec![];
        let mut outcomes = filter.counters();
        for row in source.iter() {
            let env = Env::with_row(schema.clone(), row.clone()).nested_in(outer);
            if filter.eval(self, &env, &mut outcomes)? {
                rows.push(row.clone());
            }
        }
        filter.flush(self, &outcomes);
        Ok(ResultSet { schema, rows })
    }

    /// The shard set a predicate-topped scan draws from: shards whose cached summary
    /// proves no row can satisfy the predicate's numeric bounds are dropped, and the
    /// second return is how many were. Purely an access-path optimization — dirty
    /// shards (no cached summary) and non-prunable predicates keep every shard, so
    /// the surviving rows are exactly the rows the full scan would have fed the
    /// filter.
    fn pruned_scan_set(
        &self,
        t: &Table,
        predicate: &ScalarExpr,
        schema: &Schema,
    ) -> (ShardSet, u64) {
        let bounds = shard_prune_bounds(predicate, schema);
        if bounds.is_empty() {
            return (t.shard_set(), 0);
        }
        let mut kept = Vec::with_capacity(t.shard_count());
        let mut pruned = 0u64;
        for shard in t.shards() {
            if shard.is_empty() {
                // Nothing to skip; keeping it costs nothing and keeps the counter
                // meaningful (only shards with rows count as pruned).
                kept.push(Arc::clone(shard));
                continue;
            }
            let prunable = shard.cached_summary().is_some_and(|s| {
                bounds
                    .iter()
                    .any(|(col, lo, hi)| !s.may_contain_in_range(col, *lo, *hi))
            });
            if prunable {
                pruned += 1;
            } else {
                kept.push(Arc::clone(shard));
            }
        }
        (ShardSet::new(kept), pruned)
    }

    /// Attempts to answer `σ_predicate(scan)` with a hash-index lookup. Returns
    /// `Ok(None)` when no usable index/conjunct exists.
    fn try_index_scan(
        &self,
        table: &str,
        alias: Option<&str>,
        predicate: &ScalarExpr,
        outer: &Env,
    ) -> Result<Option<ResultSet>> {
        let t = self.catalog.table(table)?;
        let schema = match alias {
            Some(a) => t.schema().with_qualifier(a),
            None => t.schema().clone(),
        };
        let conjuncts = predicate.split_conjuncts();
        for (i, conjunct) in conjuncts.iter().enumerate() {
            let ScalarExpr::Binary {
                op: BinaryOp::Eq,
                left,
                right,
            } = conjunct
            else {
                continue;
            };
            // Identify (column-of-this-table, value-expression) in either order.
            for (col_side, val_side) in [(left, right), (right, left)] {
                let ScalarExpr::Column(c) = col_side.as_ref() else {
                    continue;
                };
                if schema.find(c.qualifier.as_deref(), &c.name).is_none() {
                    continue;
                }
                if t.index_on(&c.name).is_none() {
                    continue;
                }
                // The probe value must be computable without this table's row.
                let Ok(key) = self.eval_expr(val_side, outer) else {
                    continue;
                };
                let hits = t
                    .index_lookup(&c.name, &key)
                    .unwrap_or_default()
                    .into_iter()
                    .cloned()
                    .collect::<Vec<Row>>();
                self.stats.add_index_lookups(1);
                // Apply the remaining conjuncts.
                let mut rows = vec![];
                let residual: Vec<ScalarExpr> = conjuncts
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, c)| c.clone())
                    .collect();
                let residual_pred = ScalarExpr::conjunction(residual);
                for row in hits {
                    let env = Env::with_row(schema.clone(), row.clone()).nested_in(outer);
                    if self.eval_predicate(&residual_pred, &env)? {
                        rows.push(row);
                    }
                }
                return Ok(Some(ResultSet { schema, rows }));
            }
        }
        Ok(None)
    }

    /// The output schema of a projection over `input_schema` (shared by the layered
    /// and the fused execution paths so both produce identical schemas).
    fn project_schema(&self, items: &[ProjectItem], input_schema: &Schema) -> Schema {
        let provider = self.provider();
        Schema::new(
            items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let name = item.output_name(i);
                    let data_type = expr_type(&item.expr, input_schema, &provider);
                    let qualifier = match (&item.alias, &item.expr) {
                        (None, ScalarExpr::Column(c)) => c.qualifier.clone().or_else(|| {
                            input_schema
                                .find(None, &c.name)
                                .and_then(|i| input_schema.column(i).qualifier.clone())
                        }),
                        _ => None,
                    };
                    Column {
                        qualifier,
                        name,
                        data_type,
                        nullable: true,
                    }
                })
                .collect(),
        )
    }

    fn execute_project(
        &self,
        input: &RelExpr,
        items: &[ProjectItem],
        distinct: bool,
        outer: &Env,
    ) -> Result<ResultSet> {
        let input_rs = self.execute_with_env(input, outer)?;
        let schema = self.project_schema(items, &input_rs.schema);
        let mut rows = if self.should_parallelize(input_rs.rows.len()) {
            // The projection items are where per-row UDF invocations and scalar
            // subqueries live, so this fan-out also parallelises the paper's
            // *iterative* execution style.
            let input_schema = input_rs.schema.clone();
            let source = Arc::new(input_rs.rows);
            let roots: Vec<&ScalarExpr> = items.iter().map(|item| &item.expr).collect();
            self.batch_eval_udf_calls(
                &roots,
                RowSource::Rows(Arc::clone(&source)),
                &input_schema,
                outer,
            )?;
            let chunks = {
                let source = Arc::clone(&source);
                let items = items.to_vec();
                let outer = outer.clone();
                self.run_morsels("project", 0, source.len(), move |view, range| {
                    let mut projected = Vec::with_capacity(range.len());
                    for row in &source[range] {
                        let env =
                            Env::with_row(input_schema.clone(), row.clone()).nested_in(&outer);
                        let values: Result<Vec<Value>> = items
                            .iter()
                            .map(|item| view.eval_expr(&item.expr, &env))
                            .collect();
                        projected.push(Row::new(values?));
                    }
                    Ok(projected)
                })?
            };
            concat_rows(chunks, source.len())
        } else {
            let mut projected = vec![];
            for row in input_rs.rows {
                let env = Env::with_row(input_rs.schema.clone(), row).nested_in(outer);
                let values: Result<Vec<Value>> = items
                    .iter()
                    .map(|item| self.eval_expr(&item.expr, &env))
                    .collect();
                projected.push(Row::new(values?));
            }
            projected
        };
        if distinct {
            rows = dedupe_rows(rows);
        }
        Ok(ResultSet { schema, rows })
    }

    // ------------------------------------------------------------ UDF invocation runtime

    /// Decides whether a filter's conjunction should be evaluated in learned cost
    /// order. Reordering kicks in when the knob is on, the predicate has at least two
    /// conjuncts, at least one conjunct invokes a UDF, and every UDF mentioned in the
    /// predicate is pure — a volatile UDF keeps the plain left-to-right evaluation.
    fn prepare_filter(&self, predicate: &ScalarExpr) -> PreparedFilter {
        if !self.config.cost_ordered_predicates {
            return PreparedFilter::Simple(predicate.clone());
        }
        let conjuncts = predicate.split_conjuncts();
        if conjuncts.len() < 2 {
            return PreparedFilter::Simple(predicate.clone());
        }
        const DEFAULT_COST: f64 = 1e-4;
        const DEFAULT_SELECTIVITY: f64 = 0.5;
        let mut plain = vec![];
        let mut ranked: Vec<(f64, usize, ScalarExpr, Option<String>)> = vec![];
        for (idx, conjunct) in conjuncts.into_iter().enumerate() {
            let mut names = vec![];
            collect_udf_names(&conjunct, &mut names);
            if names.is_empty() {
                plain.push((conjunct, None));
                continue;
            }
            let all_pure = names
                .iter()
                .all(|n| self.registry.udf(n).map(|u| u.pure).unwrap_or(false));
            if !all_pure {
                return PreparedFilter::Simple(predicate.clone());
            }
            let cost: f64 = names
                .iter()
                .map(|n| {
                    self.udf_hints
                        .get(n)
                        .map(|h| h.mean_seconds.max(1e-9))
                        .unwrap_or(DEFAULT_COST)
                })
                .sum();
            // Selectivity is attributed to the conjunct's first UDF; rank =
            // cost / (1 − pass-rate) puts cheap predicates that reject many rows
            // first and expensive ones that pass almost everything last.
            let selectivity = self
                .udf_hints
                .get(&names[0])
                .map(|h| h.selectivity.clamp(0.0, 1.0))
                .unwrap_or(DEFAULT_SELECTIVITY);
            let rank = cost / (1.0 - selectivity).max(0.05);
            ranked.push((rank, idx, conjunct, Some(names[0].clone())));
        }
        if ranked.is_empty() {
            return PreparedFilter::Simple(predicate.clone());
        }
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut ordered = plain;
        ordered.extend(
            ranked
                .into_iter()
                .map(|(_, _, conjunct, name)| (conjunct, name)),
        );
        PreparedFilter::Ordered(ordered)
    }

    /// True when a call to `name` with these argument expressions may be pre-evaluated
    /// by the batch pass: the UDF must be a registered pure scalar function and the
    /// arguments must not themselves invoke UDFs or subqueries (pre-evaluating those
    /// would duplicate real work the per-row pass repeats).
    fn is_batchable_udf(&self, name: &str, args: &[ScalarExpr]) -> bool {
        let Ok(udf) = self.registry.udf(name) else {
            return false;
        };
        udf.pure
            && !udf.is_table_valued()
            && args
                .iter()
                .all(|a| !a.contains_udf_call() && !a.contains_subquery())
    }

    /// Collects pure-UDF call sites in *strict* position — positions the per-row
    /// evaluation is guaranteed to reach for every row. Conditional positions (the
    /// right operand of AND/OR, CASE branches past the first condition, COALESCE past
    /// the first argument, subquery bodies) are skipped: eagerly pre-evaluating those
    /// could run a UDF the plain evaluation never would.
    fn collect_batch_sites(&self, expr: &ScalarExpr, out: &mut Vec<BatchSite>) {
        match expr {
            ScalarExpr::UdfCall { name, args } => {
                if self.is_batchable_udf(name, args) {
                    out.push(BatchSite {
                        name: normalize_ident(name),
                        args: args.clone(),
                    });
                } else {
                    for arg in args {
                        self.collect_batch_sites(arg, out);
                    }
                }
            }
            ScalarExpr::Binary {
                op: BinaryOp::And | BinaryOp::Or,
                left,
                ..
            } => self.collect_batch_sites(left, out),
            ScalarExpr::Binary { left, right, .. } => {
                self.collect_batch_sites(left, out);
                self.collect_batch_sites(right, out);
            }
            ScalarExpr::Unary { expr, .. } | ScalarExpr::Cast { expr, .. } => {
                self.collect_batch_sites(expr, out)
            }
            ScalarExpr::Case { branches, .. } => {
                if let Some((condition, _)) = branches.first() {
                    self.collect_batch_sites(condition, out);
                }
            }
            ScalarExpr::Coalesce(args) => {
                if let Some(first) = args.first() {
                    self.collect_batch_sites(first, out);
                }
            }
            _ => {}
        }
    }

    /// The batch pre-pass of the parallel filter/project paths: collects the distinct
    /// argument tuples of every strict pure-UDF site across the input, evaluates each
    /// distinct tuple exactly once fanned out over the worker pool, and leaves the
    /// results in the per-query dedup cache for the per-row pass to pick up. This is
    /// purely an optimization: evaluation errors here are swallowed (the per-row pass
    /// re-evaluates and surfaces them in row order) and no rows are touched.
    fn batch_eval_udf_calls(
        &self,
        roots: &[&ScalarExpr],
        source: RowSource,
        schema: &Schema,
        outer: &Env,
    ) -> Result<()> {
        if !self.config.udf_batching
            || !self.dedup.as_ref().is_some_and(|d| d.is_enabled())
            || source.is_empty()
        {
            return Ok(());
        }
        let mut sites = vec![];
        for root in roots {
            self.collect_batch_sites(root, &mut sites);
        }
        if sites.is_empty() {
            return Ok(());
        }
        // Pass 1: gather each morsel's distinct argument tuples per call site,
        // deduplicated within the morsel by invocation fingerprint. Both source
        // variants stream rows in place (shard sets map morsel ranges onto per-shard
        // slices — no copy-out just to collect argument tuples).
        let sites = Arc::new(sites);
        let chunks = {
            let sites = Arc::clone(&sites);
            let schema = schema.clone();
            let outer = outer.clone();
            let source = source.clone();
            self.run_morsels("udf-batch", 0, source.len(), move |view, range| {
                Ok(collect_arg_tuples(
                    view,
                    source.iter_range(range),
                    &sites,
                    &schema,
                    &outer,
                ))
            })?
        };
        // Global dedup across morsels, skipping tuples a cache can already answer.
        let mut pending: Vec<(u64, String, Vec<Value>)> = vec![];
        let mut merged: HashSet<u64> = HashSet::new();
        for chunk in chunks {
            for (fp, name, args) in chunk.0 {
                if !merged.insert(fp) {
                    continue;
                }
                let cached = self
                    .memo
                    .as_ref()
                    .is_some_and(|m| m.peek_contains(&name, fp, &args, self.memo_epoch(&name)))
                    || self
                        .dedup
                        .as_ref()
                        .is_some_and(|d| d.peek_contains(&name, fp, &args, NO_EPOCH));
                if !cached {
                    pending.push((fp, name, args));
                }
            }
        }
        if pending.len() < 2 {
            return Ok(());
        }
        // Deterministic evaluation order keeps the memo's LRU state reproducible.
        pending.sort_by_key(|(fp, _, _)| *fp);
        self.stats.add_udf_batch_evals(pending.len() as u64);
        // Pass 2: one pool task per distinct tuple — UDF bodies are heavyweight, so
        // per-tuple claiming load-balances far better than row-count morsels would.
        // `call_udf` stores each result into the dedup cache (and memo) itself.
        let pending = Arc::new(pending);
        let tasks = pending.len();
        let worker = Arc::clone(&pending);
        self.run_pool(
            "udf-batch",
            0,
            tasks,
            |_| 1,
            move |view, idx| {
                let (_, name, args) = &worker[idx];
                let _ = view.call_udf(name, args.clone());
                Ok(Vec::<Row>::new())
            },
        )?;
        Ok(())
    }

    // --------------------------------------------------------------- pipelined chains

    /// Executes a fused chain of filter/project layers over `base` in a single pass
    /// per morsel (no intermediate materialization between the fused operators). The
    /// per-row evaluation order is exactly the layered order, and morsels merge in
    /// morsel order, so the output is byte-identical to the layered execution.
    fn execute_pipelined(
        &self,
        layers: &[FusedLayer<'_>],
        base: &RelExpr,
        outer: &Env,
    ) -> Result<ResultSet> {
        let mut layers = layers;
        // Resolve the base input: either the base table itself (workers stream straight
        // out of the catalog — the fused chain also skips the scan's copy-out), or a
        // materialized result set for any other base operator.
        let (base_label, base_schema, source) = match base {
            RelExpr::Scan { table, alias } => {
                // Replicate the layered index access path: a σ directly over the scan
                // may be answered by a hash index, with identical counters. The index
                // result then becomes the materialized base of the remaining layers.
                let mut indexed: Option<ResultSet> = None;
                if self.config.use_indexes {
                    if let FusedLayer::Filter(predicate) = layers[0] {
                        indexed = self.try_index_scan(table, alias.as_deref(), predicate, outer)?;
                    }
                }
                match indexed {
                    Some(rs) => {
                        layers = &layers[1..];
                        if layers.is_empty() {
                            return Ok(rs);
                        }
                        (
                            format!("index({table})"),
                            rs.schema,
                            FusedSource::Rows(rs.rows),
                        )
                    }
                    None => {
                        let t = self.catalog.table(table)?;
                        let schema = match alias {
                            Some(a) => t.schema().with_qualifier(a),
                            None => t.schema().clone(),
                        };
                        // A filter directly over the scan can skip shards whose
                        // cached min/max proves the predicate cannot match.
                        let (set, pruned) = match layers.first() {
                            Some(FusedLayer::Filter(predicate)) => {
                                self.pruned_scan_set(t, predicate, &schema)
                            }
                            _ => (t.shard_set(), 0),
                        };
                        if pruned > 0 {
                            self.stats.add_shards_pruned(pruned);
                        }
                        self.stats.add_rows_scanned(set.len() as u64);
                        (format!("scan({table})"), schema, FusedSource::Shards(set))
                    }
                }
            }
            _ => {
                let rs = self.execute_with_env(base, outer)?;
                ("input".to_string(), rs.schema, FusedSource::Rows(rs.rows))
            }
        };
        // Precompute every stage's owned form and output schema (identical to the
        // schemas the layered operators would derive).
        let mut stages = Vec::with_capacity(layers.len());
        let mut schema = base_schema.clone();
        let mut names = vec![base_label];
        for layer in layers {
            match layer {
                FusedLayer::Filter(predicate) => {
                    names.push("filter".to_string());
                    // Cost-ordered conjuncts carry over into the fused per-row pass
                    // (same kept rows; cheapest-most-selective UDF predicate first).
                    stages.push(FusedStage::Filter(
                        self.prepare_filter(predicate).into_expr(),
                    ));
                }
                FusedLayer::Project(items) => {
                    names.push("project".to_string());
                    let out = self.project_schema(items, &schema);
                    stages.push(FusedStage::Project {
                        items: items.to_vec(),
                        schema: out.clone(),
                    });
                    schema = out;
                }
            }
        }
        let out_schema = schema;
        let len = source.len();
        if !self.should_parallelize(len) {
            // Small input: one serial pass (same evaluations, same order, same rows as
            // the layered serial execution).
            let mut rows = vec![];
            match &source {
                FusedSource::Shards(set) => {
                    for row in set.iter() {
                        apply_fused_stages(self, row, &base_schema, &stages, outer, &mut rows)?;
                    }
                }
                FusedSource::Rows(source_rows) => {
                    for row in source_rows {
                        apply_fused_stages(self, row, &base_schema, &stages, outer, &mut rows)?;
                    }
                }
            }
            return Ok(ResultSet {
                schema: out_schema,
                rows,
            });
        }
        let operator = format!("pipeline({})", names.join("→"));
        // Fused operators = every stage plus the base access it streams out of.
        let depth = stages.len() + 1;
        // The first stage is the only one every base row is guaranteed to reach, so
        // it alone feeds the batch pre-pass.
        let first_stage_roots: Vec<ScalarExpr> = match stages.first() {
            Some(FusedStage::Filter(predicate)) => vec![predicate.clone()],
            Some(FusedStage::Project { items, .. }) => {
                items.iter().map(|item| item.expr.clone()).collect()
            }
            None => vec![],
        };
        let stages = Arc::new(stages);
        let source = match source {
            FusedSource::Shards(set) => RowSource::Shards(set),
            FusedSource::Rows(rows) => RowSource::Rows(Arc::new(rows)),
        };
        self.batch_eval_udf_calls(
            &first_stage_roots.iter().collect::<Vec<_>>(),
            source.clone(),
            &base_schema,
            outer,
        )?;
        let chunks = {
            let stages = Arc::clone(&stages);
            let base_schema = base_schema.clone();
            let outer = outer.clone();
            self.run_morsels(&operator, depth, len, move |view, range| {
                let mut out = vec![];
                for row in source.iter_range(range) {
                    apply_fused_stages(view, row, &base_schema, &stages, &outer, &mut out)?;
                }
                Ok(out)
            })?
        };
        Ok(ResultSet {
            schema: out_schema,
            rows: concat_rows(chunks, 0),
        })
    }

    // ------------------------------------------------------------------- aggregation

    fn aggregate_output_schema(
        &self,
        group_by: &[ScalarExpr],
        aggregates: &[AggCall],
        input_schema: &Schema,
    ) -> Schema {
        let provider = self.provider();
        let mut columns = vec![];
        for (i, g) in group_by.iter().enumerate() {
            let (qualifier, name) = match g {
                ScalarExpr::Column(c) => (c.qualifier.clone(), c.name.clone()),
                _ => (None, format!("group{i}")),
            };
            columns.push(Column {
                qualifier,
                name,
                data_type: expr_type(g, input_schema, &provider),
                nullable: true,
            });
        }
        for a in aggregates {
            let data_type = match &a.func {
                AggFunc::Count | AggFunc::CountStar => DataType::Int,
                AggFunc::Avg => DataType::Float,
                AggFunc::Sum | AggFunc::Min | AggFunc::Max => a
                    .args
                    .first()
                    .map(|e| expr_type(e, input_schema, &provider))
                    .unwrap_or(DataType::Null),
                AggFunc::UserDefined(name) => {
                    self.registry.return_type(name).unwrap_or(DataType::Null)
                }
            };
            columns.push(Column {
                qualifier: None,
                name: a.alias.clone(),
                data_type,
                nullable: true,
            });
        }
        Schema::new(columns)
    }

    /// Fresh accumulator states for one group, one per aggregate call.
    fn make_accumulators(&self, aggregates: &[AggCall]) -> Result<Vec<AccState>> {
        aggregates
            .iter()
            .map(|a| match &a.func {
                AggFunc::UserDefined(name) => {
                    let def = self.registry.aggregate(name)?;
                    let mut state = HashMap::new();
                    for (var, _, init) in &def.state {
                        state.insert(var.clone(), init.clone());
                    }
                    Ok(AccState::User {
                        name: name.clone(),
                        state,
                    })
                }
                builtin => Ok(AccState::Builtin(BuiltinAccumulator::new(builtin))),
            })
            .collect()
    }

    /// Feeds one row's evaluated argument lists into a group's accumulators.
    fn accumulate_into(&self, accs: &mut [AccState], args_per_agg: &[Vec<Value>]) -> Result<()> {
        for (acc, args) in accs.iter_mut().zip(args_per_agg.iter()) {
            match acc {
                AccState::Builtin(b) => b.update(args),
                AccState::User { name, state } => {
                    self.accumulate_user_aggregate(name, state, args)?;
                }
            }
        }
        Ok(())
    }

    /// Finalizes groups (in their given order) into output rows.
    fn finalize_groups(
        &self,
        groups: Vec<(Vec<Value>, Vec<AccState>)>,
        schema: Schema,
    ) -> Result<ResultSet> {
        let mut rows = vec![];
        for (group_values, accs) in groups {
            let mut values = group_values;
            for acc in accs {
                let v = match acc {
                    AccState::Builtin(b) => b.finalize(),
                    AccState::User { name, state } => {
                        self.terminate_user_aggregate(&name, &state)?
                    }
                };
                values.push(v);
            }
            rows.push(Row::new(values));
        }
        Ok(ResultSet { schema, rows })
    }

    fn execute_aggregate(
        &self,
        input: &RelExpr,
        group_by: &[ScalarExpr],
        aggregates: &[AggCall],
        outer: &Env,
    ) -> Result<ResultSet> {
        let input_rs = self.execute_with_env(input, outer)?;
        let schema = self.aggregate_output_schema(group_by, aggregates, &input_rs.schema);
        if self.should_parallelize(input_rs.rows.len()) {
            return self.execute_aggregate_parallel(input_rs, group_by, aggregates, outer, schema);
        }

        // Group rows.
        let mut groups: Vec<(Vec<Value>, Vec<AccState>)> = vec![];
        let mut group_index: HashMap<Vec<GroupKey>, usize> = HashMap::new();
        for row in &input_rs.rows {
            let env = Env::with_row(input_rs.schema.clone(), row.clone()).nested_in(outer);
            let group_values: Result<Vec<Value>> =
                group_by.iter().map(|g| self.eval_expr(g, &env)).collect();
            let group_values = group_values?;
            let key: Vec<GroupKey> = group_values.iter().map(|v| v.group_key()).collect();
            let idx = match group_index.get(&key) {
                Some(&i) => i,
                None => {
                    groups.push((group_values, self.make_accumulators(aggregates)?));
                    group_index.insert(key, groups.len() - 1);
                    groups.len() - 1
                }
            };
            let args_per_agg: Result<Vec<Vec<Value>>> = aggregates
                .iter()
                .map(|call| call.args.iter().map(|a| self.eval_expr(a, &env)).collect())
                .collect();
            self.accumulate_into(&mut groups[idx].1, &args_per_agg?)?;
        }
        // A scalar aggregate (no GROUP BY) over an empty input still produces one row.
        if groups.is_empty() && group_by.is_empty() {
            groups.push((vec![], self.make_accumulators(aggregates)?));
        }
        self.finalize_groups(groups, schema)
    }

    /// Partitioned hash aggregation. Stage 1 evaluates group-by expressions and
    /// aggregate arguments morsel-parallel (this is where scalar subqueries and UDF
    /// calls in aggregate arguments run). Stage 2 assigns each group key to one of
    /// `parallelism` partitions by hash; every partition worker walks the evaluated
    /// morsels *in global row order* and accumulates only its own keys, so each group's
    /// accumulation chain is exactly the serial chain (bit-identical float sums) while
    /// distinct groups accumulate concurrently. The partial partitions merge at
    /// finalize, ordered by each group's first input row — the serial first-seen order.
    fn execute_aggregate_parallel(
        &self,
        input_rs: ResultSet,
        group_by: &[ScalarExpr],
        aggregates: &[AggCall],
        outer: &Env,
        schema: Schema,
    ) -> Result<ResultSet> {
        let nparts = self.config.parallelism.max(1);
        let input_schema = input_rs.schema;
        let source = Arc::new(input_rs.rows);
        let evaluated: Vec<Vec<EvaluatedRow>> = {
            let source = Arc::clone(&source);
            let input_schema = input_schema.clone();
            let group_by = group_by.to_vec();
            let aggregates = aggregates.to_vec();
            let outer = outer.clone();
            self.run_morsels("aggregate eval", 0, source.len(), move |view, range| {
                let mut out = Vec::with_capacity(range.len());
                for row in &source[range] {
                    let env = Env::with_row(input_schema.clone(), row.clone()).nested_in(&outer);
                    let group_values: Result<Vec<Value>> =
                        group_by.iter().map(|g| view.eval_expr(g, &env)).collect();
                    let group_values = group_values?;
                    let key: Vec<GroupKey> = group_values.iter().map(|v| v.group_key()).collect();
                    let args_per_agg: Result<Vec<Vec<Value>>> = aggregates
                        .iter()
                        .map(|call| call.args.iter().map(|a| view.eval_expr(a, &env)).collect())
                        .collect();
                    out.push(EvaluatedRow {
                        partition: partition_of(&key, nparts),
                        group_values,
                        key,
                        args_per_agg: args_per_agg?,
                    });
                }
                Ok(out)
            })?
        };

        let weight = (source.len() / nparts) as u64;
        let evaluated = Arc::new(evaluated);
        let partials: Vec<PartialGroups> = {
            let evaluated = Arc::clone(&evaluated);
            let aggregates = aggregates.to_vec();
            self.run_pool(
                "aggregate accumulate",
                0,
                nparts,
                move |_| weight,
                move |view, part| {
                    let mut groups: PartialGroups = vec![];
                    let mut index: HashMap<&[GroupKey], usize> = HashMap::new();
                    let mut row_idx = 0usize;
                    for morsel in evaluated.iter() {
                        for row in morsel {
                            let first_seen = row_idx;
                            row_idx += 1;
                            if row.partition != part {
                                continue;
                            }
                            let idx = match index.get(row.key.as_slice()) {
                                Some(&i) => i,
                                None => {
                                    groups.push((
                                        first_seen,
                                        row.group_values.clone(),
                                        view.make_accumulators(&aggregates)?,
                                    ));
                                    index.insert(&row.key, groups.len() - 1);
                                    groups.len() - 1
                                }
                            };
                            view.accumulate_into(&mut groups[idx].2, &row.args_per_agg)?;
                        }
                    }
                    Ok(groups)
                },
            )?
        };
        // Merge the partial partitions, restoring the serial first-seen group order.
        let mut merged: Vec<(usize, Vec<Value>, Vec<AccState>)> =
            partials.into_iter().flatten().collect();
        merged.sort_by_key(|(first_seen, _, _)| *first_seen);
        let groups: Vec<(Vec<Value>, Vec<AccState>)> = merged
            .into_iter()
            .map(|(_, values, accs)| (values, accs))
            .collect();
        // The parallel path requires a non-empty input, so the empty-input scalar
        // aggregate row is the serial path's concern.
        self.finalize_groups(groups, schema)
    }

    // -------------------------------------------------------------------------- joins

    /// A join/Apply input: a bare base-table scan hands back its shard set directly
    /// (the build/probe/apply morsels stream out of storage with no copy-out,
    /// mirroring the scan's counters); anything else executes and materializes.
    fn input_source(&self, plan: &RelExpr, outer: &Env) -> Result<(Schema, RowSource)> {
        if let RelExpr::Scan { table, alias } = plan {
            let t = self.catalog.table(table)?;
            let schema = match alias {
                Some(a) => t.schema().with_qualifier(a),
                None => t.schema().clone(),
            };
            let set = t.shard_set();
            self.stats.add_rows_scanned(set.len() as u64);
            if self.config.collect_cardinalities {
                self.cardinalities.record(plan, set.len() as u64);
            }
            return Ok((schema, RowSource::Shards(set)));
        }
        let rs = self.execute_with_env(plan, outer)?;
        Ok((rs.schema, RowSource::Rows(Arc::new(rs.rows))))
    }

    fn execute_join(
        &self,
        left: &RelExpr,
        right: &RelExpr,
        kind: JoinKind,
        condition: Option<&ScalarExpr>,
        outer: &Env,
    ) -> Result<ResultSet> {
        let (left_schema, left_src) = self.input_source(left, outer)?;
        let (right_schema, right_src) = self.input_source(right, outer)?;
        let out_schema = match kind {
            JoinKind::LeftSemi | JoinKind::LeftAnti => left_schema.clone(),
            JoinKind::LeftOuter => left_schema.join(&right_schema.as_nullable()),
            _ => left_schema.join(&right_schema),
        };
        let combined_schema = left_schema.join(&right_schema);

        // Try to extract hash-join keys from the condition.
        let (equi_keys, residual) = condition
            .map(|c| split_equi_conjuncts(c, &left_schema, &right_schema))
            .unwrap_or((vec![], vec![]));
        let residual_pred = ScalarExpr::conjunction(residual);
        let big_enough = left_src.len() + right_src.len() >= self.config.hash_join_threshold;

        let use_hash = !equi_keys.is_empty() && big_enough;
        if use_hash {
            self.stats.add_hash_joins(1);
        } else {
            self.stats.add_nested_loop_joins(1);
        }

        if use_hash {
            let rows = self.hash_join_rows(
                kind,
                &left_schema,
                left_src,
                &right_schema,
                right_src,
                combined_schema,
                equi_keys,
                residual_pred,
                outer,
            )?;
            return Ok(ResultSet {
                schema: out_schema,
                rows,
            });
        }

        let right_width = right_schema.len();
        let rows = if self.should_parallelize(left_src.len()) {
            let src = left_src.clone();
            let right_src = right_src.clone();
            let combined_schema = combined_schema.clone();
            let condition = condition.cloned();
            let outer = outer.clone();
            let chunks = self.run_morsels(
                "nested-loop-join probe",
                0,
                left_src.len(),
                move |view, range| {
                    let mut out = vec![];
                    for lrow in src.iter_range(range) {
                        nl_probe_row(
                            view,
                            lrow,
                            &right_src,
                            right_width,
                            &combined_schema,
                            kind,
                            condition.as_ref(),
                            &outer,
                            &mut out,
                        )?;
                    }
                    Ok(out)
                },
            )?;
            concat_rows(chunks, 0)
        } else {
            let mut out = vec![];
            for lrow in left_src.iter() {
                nl_probe_row(
                    self,
                    lrow,
                    &right_src,
                    right_width,
                    &combined_schema,
                    kind,
                    condition,
                    outer,
                    &mut out,
                )?;
            }
            out
        };
        Ok(ResultSet {
            schema: out_schema,
            rows,
        })
    }

    /// Hash-join key of one row: `None` when any key expression is NULL (SQL equality
    /// never matches NULL).
    fn join_key<'e>(
        &self,
        row: &Row,
        schema: &Schema,
        key_exprs: impl Iterator<Item = &'e ScalarExpr>,
        outer: &Env,
    ) -> Result<Option<Vec<GroupKey>>> {
        let env = Env::with_row(schema.clone(), row.clone()).nested_in(outer);
        let mut key = vec![];
        for expr in key_exprs {
            let v = self.eval_expr(expr, &env)?;
            if v.is_null() {
                return Ok(None);
            }
            key.push(v.group_key());
        }
        Ok(Some(key))
    }

    /// Hash-join rows: a partitioned build over the right input and a (possibly
    /// morsel-parallel) probe over the left input. Bucket entries hold ascending right
    /// row indexes — the serial build order — and probe morsels reassemble in morsel
    /// order, so the output row order is byte-identical to the serial join.
    #[allow(clippy::too_many_arguments)]
    fn hash_join_rows(
        &self,
        kind: JoinKind,
        left_schema: &Schema,
        left_src: RowSource,
        right_schema: &Schema,
        right_src: RowSource,
        combined_schema: Schema,
        equi_keys: Vec<(ScalarExpr, ScalarExpr)>,
        residual_pred: ScalarExpr,
        outer: &Env,
    ) -> Result<Vec<Row>> {
        let parallel_build = self.should_parallelize(right_src.len());
        let parallel_probe = self.should_parallelize(left_src.len());
        let nparts = if parallel_build || parallel_probe {
            self.config.parallelism.max(1)
        } else {
            1
        };
        let right_width = right_schema.len();
        let equi_keys = Arc::new(equi_keys);

        // Build phase: per-morsel key computation, pre-bucketed by partition.
        let build_chunks: Vec<BuildBuckets> = if parallel_build {
            let right = right_src.clone();
            let right_schema = right_schema.clone();
            let equi_keys = Arc::clone(&equi_keys);
            let outer_env = outer.clone();
            self.run_morsels(
                "hash-join build keys",
                0,
                right_src.len(),
                move |view, range| {
                    build_buckets(
                        view,
                        &right,
                        &right_schema,
                        &equi_keys,
                        &outer_env,
                        nparts,
                        range,
                    )
                },
            )?
        } else {
            vec![build_buckets(
                self,
                &right_src,
                right_schema,
                &equi_keys,
                outer,
                nparts,
                0..right_src.len(),
            )?]
        };
        // Assemble one hash table per partition. Concatenating each partition's buckets
        // across morsels in morsel order keeps every bucket's indexes ascending. Pool
        // the per-partition assembly only when the build side itself is large; a big
        // probe side over a tiny build table keeps the cheap serial assemble.
        let build_chunks = Arc::new(build_chunks);
        let tables: Vec<HashMap<Vec<GroupKey>, Vec<usize>>> = if parallel_build && nparts > 1 {
            let chunks = Arc::clone(&build_chunks);
            let weight = (right_src.len() / nparts) as u64;
            self.run_pool(
                "hash-join build",
                0,
                nparts,
                move |_| weight,
                move |_, part| Ok(assemble_partition(&chunks, part)),
            )?
        } else {
            (0..nparts)
                .map(|part| assemble_partition(&build_chunks, part))
                .collect()
        };
        let tables = Arc::new(tables);

        // Probe phase.
        if parallel_probe {
            let left_schema = left_schema.clone();
            let src = left_src.clone();
            let right = right_src.clone();
            let outer = outer.clone();
            let residual_pred = residual_pred.clone();
            let combined_schema = combined_schema.clone();
            let chunks =
                self.run_morsels("hash-join probe", 0, left_src.len(), move |view, range| {
                    let mut out = vec![];
                    for lrow in src.iter_range(range) {
                        hash_probe_row(
                            view,
                            lrow,
                            &left_schema,
                            &right,
                            right_width,
                            &combined_schema,
                            &equi_keys,
                            &residual_pred,
                            &tables,
                            nparts,
                            kind,
                            &outer,
                            &mut out,
                        )?;
                    }
                    Ok(out)
                })?;
            Ok(concat_rows(chunks, 0))
        } else {
            let mut out = vec![];
            for lrow in left_src.iter() {
                hash_probe_row(
                    self,
                    lrow,
                    left_schema,
                    &right_src,
                    right_width,
                    &combined_schema,
                    &equi_keys,
                    &residual_pred,
                    &tables,
                    nparts,
                    kind,
                    outer,
                    &mut out,
                )?;
            }
            Ok(out)
        }
    }

    // -------------------------------------------------------------------- Apply family

    fn execute_apply(
        &self,
        left: &RelExpr,
        right: &RelExpr,
        kind: ApplyKind,
        bindings: &[decorr_algebra::plan::ParamBinding],
        outer: &Env,
    ) -> Result<ResultSet> {
        let (left_schema, left_src) = self.input_source(left, outer)?;
        let provider = self.provider();
        let right_schema = infer_schema(right, &provider).unwrap_or_else(|_| Schema::empty());
        let out_schema = match kind {
            ApplyKind::LeftSemi | ApplyKind::LeftAnti => left_schema.clone(),
            ApplyKind::LeftOuter => left_schema.join(&right_schema.as_nullable()),
            ApplyKind::Cross => left_schema.join(&right_schema),
        };
        // Correlated evaluation of the inner plan, once per outer row. Each outer row
        // is independent, so the Apply family is morsel-parallel over its left input —
        // this is what parallelises iterative (non-decorrelated) execution. The job
        // context owns a clone of the inner plan: the pool workers outlive this frame.
        let right_plan = right.clone();
        let bindings = bindings.to_vec();
        let outer_env = outer.clone();
        let apply_one = move |view: &Executor, lrow: &Row, rows: &mut Vec<Row>| -> Result<()> {
            let mut env = Env::with_row(left_schema.clone(), lrow.clone()).nested_in(&outer_env);
            for b in &bindings {
                let v = view.eval_expr(&b.value, &env)?;
                env.set_param(&b.param, v);
            }
            let inner = view.execute_with_env(&right_plan, &env)?;
            match kind {
                ApplyKind::Cross => {
                    for rrow in inner.rows {
                        rows.push(lrow.concat(&rrow));
                    }
                }
                ApplyKind::LeftOuter => {
                    if inner.rows.is_empty() {
                        rows.push(lrow.concat(&Row::nulls(right_schema.len())));
                    } else {
                        for rrow in inner.rows {
                            rows.push(lrow.concat(&rrow));
                        }
                    }
                }
                ApplyKind::LeftSemi => {
                    if !inner.rows.is_empty() {
                        rows.push(lrow.clone());
                    }
                }
                ApplyKind::LeftAnti => {
                    if inner.rows.is_empty() {
                        rows.push(lrow.clone());
                    }
                }
            }
            Ok(())
        };
        let rows = self.for_each_left_row(left_src, "apply", apply_one)?;
        Ok(ResultSet {
            schema: out_schema,
            rows,
        })
    }

    /// Runs `f` for every left row, morsel-parallel when the left input is large
    /// enough, and returns the per-row outputs concatenated in left-row order. `f` must
    /// own its captured context (`'static`): it may run on persistent pool workers.
    fn for_each_left_row<F>(&self, left: RowSource, operator: &str, f: F) -> Result<Vec<Row>>
    where
        F: Fn(&Executor, &Row, &mut Vec<Row>) -> Result<()> + Send + Sync + 'static,
    {
        if self.should_parallelize(left.len()) {
            let src = left.clone();
            let chunks = self.run_morsels(operator, 0, left.len(), move |view, range| {
                let mut out = vec![];
                for lrow in src.iter_range(range) {
                    f(view, lrow, &mut out)?;
                }
                Ok(out)
            })?;
            Ok(concat_rows(chunks, 0))
        } else {
            let mut out = vec![];
            for lrow in left.iter() {
                f(self, lrow, &mut out)?;
            }
            Ok(out)
        }
    }

    fn execute_apply_merge(
        &self,
        left: &RelExpr,
        right: &RelExpr,
        assignments: &[decorr_algebra::plan::MergeAssignment],
        outer: &Env,
    ) -> Result<ResultSet> {
        let (left_schema, left_src) = self.input_source(left, outer)?;
        let schema = left_schema.clone();
        let right_plan = right.clone();
        let assignments = assignments.to_vec();
        let outer_env = outer.clone();
        let merge_one = move |view: &Executor, lrow: &Row, rows: &mut Vec<Row>| -> Result<()> {
            let env = Env::with_row(left_schema.clone(), lrow.clone()).nested_in(&outer_env);
            let inner = view.execute_with_env(&right_plan, &env)?;
            rows.push(view.merge_row(lrow, &left_schema, &inner, &assignments)?);
            Ok(())
        };
        let rows = self.for_each_left_row(left_src, "apply-merge", merge_one)?;
        Ok(ResultSet { schema, rows })
    }

    fn execute_conditional_apply_merge(
        &self,
        left: &RelExpr,
        predicate: &ScalarExpr,
        then_branch: &RelExpr,
        else_branch: &RelExpr,
        assignments: &[decorr_algebra::plan::MergeAssignment],
        outer: &Env,
    ) -> Result<ResultSet> {
        let (left_schema, left_src) = self.input_source(left, outer)?;
        let schema = left_schema.clone();
        let predicate = predicate.clone();
        let then_plan = then_branch.clone();
        let else_plan = else_branch.clone();
        let assignments = assignments.to_vec();
        let outer_env = outer.clone();
        let merge_one = move |view: &Executor, lrow: &Row, rows: &mut Vec<Row>| -> Result<()> {
            let env = Env::with_row(left_schema.clone(), lrow.clone()).nested_in(&outer_env);
            let branch = if view.eval_predicate(&predicate, &env)? {
                &then_plan
            } else {
                &else_plan
            };
            let inner = view.execute_with_env(branch, &env)?;
            rows.push(view.merge_row(lrow, &left_schema, &inner, &assignments)?);
            Ok(())
        };
        let rows = self.for_each_left_row(left_src, "conditional-apply-merge", merge_one)?;
        Ok(ResultSet { schema, rows })
    }

    /// Implements the Apply-Merge assignment semantics: the inner result must have at
    /// most one tuple; its attributes are assigned into the outer tuple. An empty inner
    /// result retains the existing values (the paper notes this behaviour is
    /// system-specific; we follow the "no assignment" interpretation).
    fn merge_row(
        &self,
        lrow: &Row,
        left_schema: &Schema,
        inner: &ResultSet,
        assignments: &[decorr_algebra::plan::MergeAssignment],
    ) -> Result<Row> {
        if inner.rows.len() > 1 {
            return Err(Error::Execution(format!(
                "assignment source returned {} rows (expected at most one)",
                inner.rows.len()
            )));
        }
        let mut out = lrow.clone();
        if let Some(inner_row) = inner.rows.first() {
            if assignments.is_empty() {
                // Default: merge all common attributes.
                for (ri, rcol) in inner.schema.columns.iter().enumerate() {
                    if let Some(li) = left_schema.find(None, &rcol.name) {
                        out.values[li] = inner_row.get(ri).clone();
                    }
                }
            } else {
                for a in assignments {
                    let li = left_schema.index_of(None, &a.target)?;
                    let ri = inner.schema.index_of(None, &a.source)?;
                    out.values[li] = inner_row.get(ri).clone();
                }
            }
        }
        Ok(out)
    }
}

// ------------------------------------------------------------------ pipelined helpers

/// A fusible layer borrowed from the plan during chain detection.
enum FusedLayer<'p> {
    Filter(&'p ScalarExpr),
    Project(&'p [ProjectItem]),
}

/// The owned per-row form of a fused stage (carried into the `'static` batch job).
enum FusedStage {
    Filter(ScalarExpr),
    Project {
        items: Vec<ProjectItem>,
        /// The stage's output schema (equals the layered operator's output schema).
        schema: Schema,
    },
}

/// The base input a fused chain streams out of.
enum FusedSource {
    /// A base-table scan: workers stream straight out of the table's (possibly
    /// pruned) shard set — no copy-out materialization.
    Shards(ShardSet),
    /// Any other base: its materialized rows.
    Rows(Vec<Row>),
}

impl FusedSource {
    fn len(&self) -> usize {
        match self {
            FusedSource::Shards(set) => set.len(),
            FusedSource::Rows(rows) => rows.len(),
        }
    }
}

/// A numeric bound on one column extracted from a scan predicate's conjuncts, in the
/// shape [`decorr_storage::ShardStatistics::may_contain_in_range`] consumes:
/// `(column, lower, upper)` with each endpoint `(value, inclusive)`.
type PruneBound = (String, Option<(f64, bool)>, Option<(f64, bool)>);

/// Extracts shard-prunable bounds from `predicate`'s top-level conjuncts: every
/// `column <op> literal` comparison (either operand order) over a column of `schema`
/// whose literal is numeric contributes one bound. A shard must satisfy every
/// conjunct, so each bound can prune independently; anything else (ORs, UDFs,
/// non-numeric literals, column-to-column comparisons) simply contributes nothing.
fn shard_prune_bounds(predicate: &ScalarExpr, schema: &Schema) -> Vec<PruneBound> {
    let mut bounds = vec![];
    for conjunct in predicate.split_conjuncts() {
        let ScalarExpr::Binary { op, left, right } = &conjunct else {
            continue;
        };
        for (col_side, lit_side, flipped) in [(left, right, false), (right, left, true)] {
            let ScalarExpr::Column(c) = col_side.as_ref() else {
                continue;
            };
            if schema.find(c.qualifier.as_deref(), &c.name).is_none() {
                continue;
            }
            let ScalarExpr::Literal(v) = lit_side.as_ref() else {
                continue;
            };
            let x = match v {
                Value::Int(i) => *i as f64,
                Value::Float(f) => *f,
                _ => continue,
            };
            // Normalized to `column <op'> x` (a flipped `literal <op> column`
            // mirrors the comparison).
            let (lo, hi) = match (*op, flipped) {
                (BinaryOp::Eq, _) => (Some((x, true)), Some((x, true))),
                (BinaryOp::Lt, false) | (BinaryOp::Gt, true) => (None, Some((x, false))),
                (BinaryOp::LtEq, false) | (BinaryOp::GtEq, true) => (None, Some((x, true))),
                (BinaryOp::Gt, false) | (BinaryOp::Lt, true) => (Some((x, false)), None),
                (BinaryOp::GtEq, false) | (BinaryOp::LtEq, true) => (Some((x, true)), None),
                _ => continue,
            };
            bounds.push((c.name.clone(), lo, hi));
            break;
        }
    }
    bounds
}

/// Peels a chain of fusible layers (non-distinct projections and filters) off the top
/// of `plan`, returning them **bottom-up** together with the base they feed on. Fusion
/// pays off when there is more than one layer (an intermediate materialization is
/// skipped) or when the base is a table scan (the scan's copy-out is skipped too);
/// anything else returns `None` and executes operator by operator.
fn fusible_chain(plan: &RelExpr) -> Option<(Vec<FusedLayer<'_>>, &RelExpr)> {
    let mut layers = vec![];
    let mut cur = plan;
    loop {
        match cur {
            RelExpr::Project {
                input,
                items,
                distinct: false,
            } => {
                layers.push(FusedLayer::Project(items));
                cur = input;
            }
            RelExpr::Select { input, predicate } => {
                layers.push(FusedLayer::Filter(predicate));
                cur = input;
            }
            _ => break,
        }
    }
    if layers.is_empty() {
        return None;
    }
    if layers.len() < 2 && !matches!(cur, RelExpr::Scan { .. }) {
        return None;
    }
    layers.reverse();
    Some((layers, cur))
}

/// Streams one base row through every fused stage, appending the surviving (projected)
/// row to `out`. The evaluation order per row is exactly the layered order.
fn apply_fused_stages(
    view: &Executor,
    row: &Row,
    base_schema: &Schema,
    stages: &[FusedStage],
    outer: &Env,
    out: &mut Vec<Row>,
) -> Result<()> {
    let mut current = row.clone();
    let mut schema = base_schema;
    for stage in stages {
        match stage {
            FusedStage::Filter(predicate) => {
                let env = Env::with_row(schema.clone(), current.clone()).nested_in(outer);
                if !view.eval_predicate(predicate, &env)? {
                    return Ok(());
                }
            }
            FusedStage::Project {
                items,
                schema: out_schema,
            } => {
                let env = Env::with_row(schema.clone(), current).nested_in(outer);
                let values: Result<Vec<Value>> = items
                    .iter()
                    .map(|item| view.eval_expr(&item.expr, &env))
                    .collect();
                current = Row::new(values?);
                schema = out_schema;
            }
        }
    }
    out.push(current);
    Ok(())
}

// ----------------------------------------------------------------------- join helpers

/// Emits the left-only / null-extended outputs for outer, semi and anti joins.
fn finish_left_row(
    kind: JoinKind,
    matched: bool,
    lrow: &Row,
    right_width: usize,
    rows: &mut Vec<Row>,
) {
    match kind {
        JoinKind::LeftOuter if !matched => rows.push(lrow.concat(&Row::nulls(right_width))),
        JoinKind::LeftSemi if matched => rows.push(lrow.clone()),
        JoinKind::LeftAnti if !matched => rows.push(lrow.clone()),
        _ => {}
    }
}

/// Probes one left row against the whole right side (nested-loop join body).
#[allow(clippy::too_many_arguments)]
fn nl_probe_row(
    view: &Executor,
    lrow: &Row,
    right: &RowSource,
    right_width: usize,
    combined_schema: &Schema,
    kind: JoinKind,
    condition: Option<&ScalarExpr>,
    outer: &Env,
    rows: &mut Vec<Row>,
) -> Result<()> {
    let mut matched = false;
    for rrow in right.iter() {
        let combined = lrow.concat(rrow);
        let env = Env::with_row(combined_schema.clone(), combined.clone()).nested_in(outer);
        let pass = match condition {
            Some(c) => view.eval_predicate(c, &env)?,
            None => true,
        };
        if pass {
            matched = true;
            match kind {
                JoinKind::LeftSemi | JoinKind::LeftAnti => break,
                _ => rows.push(combined),
            }
        }
    }
    finish_left_row(kind, matched, lrow, right_width, rows);
    Ok(())
}

/// Computes one build morsel's `(key, right row index)` entries, bucketed by partition.
#[allow(clippy::too_many_arguments)]
fn build_buckets(
    view: &Executor,
    right: &RowSource,
    right_schema: &Schema,
    equi_keys: &[(ScalarExpr, ScalarExpr)],
    outer: &Env,
    nparts: usize,
    range: std::ops::Range<usize>,
) -> Result<BuildBuckets> {
    let mut buckets: BuildBuckets = vec![vec![]; nparts];
    for (offset, rrow) in right.iter_range(range.clone()).enumerate() {
        let key = view.join_key(
            rrow,
            right_schema,
            equi_keys.iter().map(|(_, rk)| rk),
            outer,
        )?;
        if let Some(key) = key {
            let part = partition_of(&key, nparts);
            buckets[part].push((key, range.start + offset));
        }
    }
    Ok(buckets)
}

/// Assembles one partition's hash table from the per-morsel buckets (morsel order keeps
/// every bucket's row indexes ascending — the serial build order).
fn assemble_partition(
    build_chunks: &[BuildBuckets],
    part: usize,
) -> HashMap<Vec<GroupKey>, Vec<usize>> {
    let mut table: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
    for chunk in build_chunks {
        for (key, idx) in &chunk[part] {
            table.entry(key.clone()).or_default().push(*idx);
        }
    }
    table
}

/// Probes one left row against the partitioned hash tables (hash-join probe body).
#[allow(clippy::too_many_arguments)]
fn hash_probe_row(
    view: &Executor,
    lrow: &Row,
    left_schema: &Schema,
    right: &RowSource,
    right_width: usize,
    combined_schema: &Schema,
    equi_keys: &[(ScalarExpr, ScalarExpr)],
    residual_pred: &ScalarExpr,
    tables: &[HashMap<Vec<GroupKey>, Vec<usize>>],
    nparts: usize,
    kind: JoinKind,
    outer: &Env,
    rows: &mut Vec<Row>,
) -> Result<()> {
    let key = view.join_key(lrow, left_schema, equi_keys.iter().map(|(lk, _)| lk), outer)?;
    let matches: &[usize] = match &key {
        None => &[],
        Some(key) => tables[partition_of(key, nparts)]
            .get(key)
            .map(|v| v.as_slice())
            .unwrap_or(&[]),
    };
    let mut matched = false;
    for &ri in matches {
        let combined = lrow.concat(right.get(ri));
        let env = Env::with_row(combined_schema.clone(), combined.clone()).nested_in(outer);
        if view.eval_predicate(residual_pred, &env)? {
            matched = true;
            match kind {
                JoinKind::LeftSemi | JoinKind::LeftAnti => break,
                _ => rows.push(combined),
            }
        }
    }
    finish_left_row(kind, matched, lrow, right_width, rows);
    Ok(())
}

/// Splits a join condition into hash-join key pairs `(left_key, right_key)` and residual
/// conjuncts. A conjunct qualifies as a key pair when it is an equality whose two sides
/// reference columns of exactly one (different) input each.
fn split_equi_conjuncts(
    condition: &ScalarExpr,
    left: &Schema,
    right: &Schema,
) -> (Vec<(ScalarExpr, ScalarExpr)>, Vec<ScalarExpr>) {
    let mut keys = vec![];
    let mut residual = vec![];
    for conjunct in condition.split_conjuncts() {
        if let ScalarExpr::Binary {
            op: BinaryOp::Eq,
            left: a,
            right: b,
        } = &conjunct
        {
            let a_side = side_of(a, left, right);
            let b_side = side_of(b, left, right);
            match (a_side, b_side) {
                (Side::Left, Side::Right) => {
                    keys.push((a.as_ref().clone(), b.as_ref().clone()));
                    continue;
                }
                (Side::Right, Side::Left) => {
                    keys.push((b.as_ref().clone(), a.as_ref().clone()));
                    continue;
                }
                _ => {}
            }
        }
        residual.push(conjunct);
    }
    (keys, residual)
}

#[derive(PartialEq, Clone, Copy)]
enum Side {
    Left,
    Right,
    Neither,
}

/// Which input's columns an expression references (exclusively).
fn side_of(expr: &ScalarExpr, left: &Schema, right: &Schema) -> Side {
    let mut cols: Vec<ColumnRef> = vec![];
    expr.collect_columns(&mut cols);
    if cols.is_empty() {
        return Side::Neither;
    }
    let mut params = vec![];
    expr.collect_params(&mut params);
    if !params.is_empty() || expr.contains_subquery() {
        return Side::Neither;
    }
    let all_left = cols
        .iter()
        .all(|c| left.find(c.qualifier.as_deref(), &c.name).is_some());
    let all_right = cols
        .iter()
        .all(|c| right.find(c.qualifier.as_deref(), &c.name).is_some());
    match (all_left, all_right) {
        (true, false) => Side::Left,
        (false, true) => Side::Right,
        _ => Side::Neither,
    }
}

/// One build-side entry: the evaluated join key and the global right-row index.
type BuildEntry = (Vec<GroupKey>, usize);
/// One build morsel's output: entries bucketed by partition.
type BuildBuckets = Vec<Vec<BuildEntry>>;
/// `(first input row, group values, accumulators)` per group, per partition.
type PartialGroups = Vec<(usize, Vec<Value>, Vec<AccState>)>;

/// One input row of a parallel aggregation after the morsel-parallel evaluation stage.
struct EvaluatedRow {
    group_values: Vec<Value>,
    key: Vec<GroupKey>,
    /// Hash partition of `key`, computed once in the parallel stage so the
    /// accumulation workers don't re-hash every row `nparts` times.
    partition: usize,
    args_per_agg: Vec<Vec<Value>>,
}

impl crate::parallel::OutputRows for Vec<EvaluatedRow> {
    fn output_rows(&self) -> u64 {
        self.len() as u64
    }
}

impl crate::parallel::OutputRows for BuildBuckets {
    fn output_rows(&self) -> u64 {
        self.iter().map(|b| b.len() as u64).sum()
    }
}

impl crate::parallel::OutputRows for PartialGroups {
    fn output_rows(&self) -> u64 {
        self.len() as u64
    }
}

/// One batchable pure-UDF call site found in strict position: the normalized function
/// name plus its argument expressions (the call's correlation signature — which outer
/// columns feed it).
struct BatchSite {
    name: String,
    args: Vec<ScalarExpr>,
}

/// The distinct `(fingerprint, name, argument tuple)` triples one morsel contributed
/// to the batch pre-pass.
struct ArgTuples(Vec<(u64, String, Vec<Value>)>);

impl crate::parallel::OutputRows for ArgTuples {
    fn output_rows(&self) -> u64 {
        self.0.len() as u64
    }
}

/// A morsel-parallel row source the executor's `'static` pool jobs capture: either an
/// already-materialized input, or a set of table shards streamed straight out of
/// storage (no copy-out). Cloning is cheap — both variants hand out shared handles.
#[derive(Clone)]
enum RowSource {
    Rows(Arc<Vec<Row>>),
    Shards(ShardSet),
}

impl RowSource {
    fn len(&self) -> usize {
        match self {
            RowSource::Rows(rows) => rows.len(),
            RowSource::Shards(set) => set.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The row at global position `i` (must be in bounds).
    fn get(&self, i: usize) -> &Row {
        match self {
            RowSource::Rows(rows) => &rows[i],
            RowSource::Shards(set) => set.get(i).expect("row index out of bounds"),
        }
    }

    /// All rows, in source order.
    fn iter(&self) -> Box<dyn Iterator<Item = &Row> + '_> {
        match self {
            RowSource::Rows(rows) => Box::new(rows.iter()),
            RowSource::Shards(set) => Box::new(set.iter()),
        }
    }

    /// The rows of one global range (a morsel), in source order.
    fn iter_range(&self, range: std::ops::Range<usize>) -> Box<dyn Iterator<Item = &Row> + '_> {
        match self {
            RowSource::Rows(rows) => Box::new(rows[range].iter()),
            RowSource::Shards(set) => Box::new(set.iter_range(range)),
        }
    }
}

/// One morsel of the batch pre-pass's collection stage: evaluates every site's
/// argument tuple per row, deduplicating within the morsel by fingerprint.
/// Argument-evaluation errors are skipped — the per-row pass re-evaluates and
/// surfaces them in deterministic row order.
fn collect_arg_tuples<'a>(
    view: &Executor,
    rows: impl Iterator<Item = &'a Row>,
    sites: &[BatchSite],
    schema: &Schema,
    outer: &Env,
) -> ArgTuples {
    let mut seen: HashMap<u64, (String, Vec<Value>)> = HashMap::new();
    for row in rows {
        let env = Env::with_row(schema.clone(), row.clone()).nested_in(outer);
        for site in sites {
            let args: Result<Vec<Value>> =
                site.args.iter().map(|a| view.eval_expr(a, &env)).collect();
            let Ok(args) = args else { continue };
            let fp = fingerprint_invocation(&site.name, &args);
            seen.entry(fp).or_insert_with(|| (site.name.clone(), args));
        }
    }
    ArgTuples(seen.into_iter().map(|(fp, (n, a))| (fp, n, a)).collect())
}

/// Appends the normalized names of every UDF invoked anywhere in `expr` (not
/// descending into subquery bodies) to `out`, in evaluation order.
fn collect_udf_names(expr: &ScalarExpr, out: &mut Vec<String>) {
    if let ScalarExpr::UdfCall { name, .. } = expr {
        out.push(normalize_ident(name));
    }
    for child in expr.children() {
        collect_udf_names(child, out);
    }
}

/// A filter predicate prepared for evaluation: either the original expression, or a
/// conjunction whose UDF-bearing conjuncts were reordered cheapest-most-selective
/// first and instrumented with selectivity counters for the feedback loop.
enum PreparedFilter {
    Simple(ScalarExpr),
    /// Conjuncts in evaluation order; `Some(name)` tags UDF-bearing conjuncts with
    /// the normalized name of their first UDF for selectivity attribution.
    Ordered(Vec<(ScalarExpr, Option<String>)>),
}

impl PreparedFilter {
    /// The expressions the per-row pass is guaranteed to evaluate for every row —
    /// the batch pre-pass roots. For an ordered conjunction only the first conjunct
    /// is strict (later conjuncts are short-circuited).
    fn strict_roots(&self) -> Vec<&ScalarExpr> {
        match self {
            PreparedFilter::Simple(expr) => vec![expr],
            PreparedFilter::Ordered(conjuncts) => conjuncts
                .first()
                .map(|(expr, _)| expr)
                .into_iter()
                .collect(),
        }
    }

    /// Collapses the prepared filter back into a single expression, preserving the
    /// chosen conjunct order. Used by the fused pipeline path, which evaluates the
    /// predicate per row without selectivity instrumentation: AND short-circuits
    /// left-to-right, so the reordering's benefit carries over.
    fn into_expr(self) -> ScalarExpr {
        match self {
            PreparedFilter::Simple(expr) => expr,
            PreparedFilter::Ordered(conjuncts) => {
                ScalarExpr::conjunction(conjuncts.into_iter().map(|(expr, _)| expr).collect())
            }
        }
    }

    /// Fresh outcome counters, one `(evaluated, passed)` slot per ordered conjunct.
    fn counters(&self) -> Vec<(u64, u64)> {
        match self {
            PreparedFilter::Simple(_) => vec![],
            PreparedFilter::Ordered(conjuncts) => vec![(0, 0); conjuncts.len()],
        }
    }

    /// Evaluates the filter for one row. The kept-row set is identical to plain
    /// evaluation under three-valued logic (a conjunction is true iff every conjunct
    /// is true); only which conjunct surfaces a runtime error first can differ.
    fn eval(&self, exec: &Executor, env: &Env, outcomes: &mut [(u64, u64)]) -> Result<bool> {
        match self {
            PreparedFilter::Simple(expr) => exec.eval_predicate(expr, env),
            PreparedFilter::Ordered(conjuncts) => {
                for (i, (conjunct, name)) in conjuncts.iter().enumerate() {
                    let pass = exec.eval_predicate(conjunct, env)?;
                    if name.is_some() {
                        outcomes[i].0 += 1;
                        if pass {
                            outcomes[i].1 += 1;
                        }
                    }
                    if !pass {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    /// Folds one evaluation batch's outcome counters into the executor's selectivity
    /// collector (one lock acquisition per morsel, not per row).
    fn flush(&self, exec: &Executor, outcomes: &[(u64, u64)]) {
        if let PreparedFilter::Ordered(conjuncts) = self {
            for ((_, name), (evaluated, passed)) in conjuncts.iter().zip(outcomes) {
                if let Some(name) = name {
                    exec.udf_selectivity.record(name, *evaluated, *passed);
                }
            }
        }
    }
}

/// Running accumulator state for one aggregate call within one group: either a
/// built-in accumulator or the interpreted state of a user-defined aggregate.
enum AccState {
    Builtin(BuiltinAccumulator),
    User {
        name: String,
        state: HashMap<String, Value>,
    },
}

/// Which hash partition a group/join key belongs to. Any stable hash works — the
/// partition assignment only has to agree between build and probe within one operator.
fn partition_of(key: &[GroupKey], nparts: usize) -> usize {
    if nparts <= 1 {
        return 0;
    }
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() % nparts as u64) as usize
}

/// Concatenates per-morsel row chunks (already in morsel order) into one vector.
fn concat_rows(chunks: Vec<Vec<Row>>, capacity_hint: usize) -> Vec<Row> {
    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total.max(capacity_hint));
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Removes duplicate rows (used by UNION and DISTINCT) preserving first-seen order.
fn dedupe_rows(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: HashSet<Vec<GroupKey>> = HashSet::new();
    let mut out = vec![];
    for row in rows {
        let key: Vec<GroupKey> = row.values.iter().map(|v| v.group_key()).collect();
        if seen.insert(key) {
            out.push(row);
        }
    }
    out
}
