//! Shared helpers for the benchmark harness and the timing benches.
//!
//! Every experiment compares the same two strategies the paper compares:
//! the **original** query (iterative UDF invocation per tuple) and the **rewritten**
//! (decorrelated) query, over the same generated data, while sweeping the number of UDF
//! invocations. Since the engine routes every query through the optimizer's PassManager,
//! each measured point also carries the per-pass optimizer timings of both runs.

use std::time::{Duration, Instant};

use decorr_engine::{Database, QueryOptions};
use decorr_tpch::{generate, TpchConfig, Workload};

/// One measured point of an experiment sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub invocations: usize,
    pub original: Duration,
    pub rewritten: Duration,
    pub original_rows: usize,
    pub rewritten_rows: usize,
    /// Time the optimizer pipeline spent inside its passes for the iterative run
    /// (normalisation only).
    pub original_optimize: Duration,
    /// Time the optimizer pipeline spent inside its passes for the decorrelated run
    /// (normalize + algebraize/merge + Apply removal + cleanup).
    pub rewritten_optimize: Duration,
}

impl SweepPoint {
    pub fn speedup(&self) -> f64 {
        let rewritten = self.rewritten.as_secs_f64().max(1e-9);
        self.original.as_secs_f64() / rewritten
    }
}

/// Builds the benchmark database at the given customer scale and installs a workload.
pub fn setup(workload: &Workload, customers: usize) -> Database {
    let config = TpchConfig::default().with_customers(customers);
    let mut db = generate(&config).expect("data generation");
    workload.install(&mut db).expect("workload install");
    db
}

/// Times one execution of the workload query under both strategies.
pub fn measure_point(db: &Database, workload: &Workload, invocations: usize) -> SweepPoint {
    let sql = (workload.query)(invocations);
    let start = Instant::now();
    let original = db
        .query_with(&sql, &QueryOptions::iterative())
        .expect("iterative execution");
    let original_time = start.elapsed();
    let start = Instant::now();
    let rewritten = db
        .query_with(&sql, &QueryOptions::decorrelated())
        .expect("decorrelated execution");
    let rewritten_time = start.elapsed();
    assert_eq!(
        original.rows.len(),
        rewritten.rows.len(),
        "strategies disagree on row count for {invocations} invocations"
    );
    SweepPoint {
        invocations,
        original: original_time,
        rewritten: rewritten_time,
        original_rows: original.rows.len(),
        rewritten_rows: rewritten.rows.len(),
        original_optimize: original.rewrite_report.total_duration(),
        rewritten_optimize: rewritten.rewrite_report.total_duration(),
    }
}

/// Runs a full sweep over an already-built database.
pub fn run_sweep_on(db: &Database, workload: &Workload, invocations: &[usize]) -> Vec<SweepPoint> {
    invocations
        .iter()
        .map(|&n| measure_point(db, workload, n))
        .collect()
}

/// Runs a full sweep and returns the points (used by the `paper_figures` binary and the
/// EXPERIMENTS.md numbers).
pub fn run_sweep(workload: &Workload, customers: usize, invocations: &[usize]) -> Vec<SweepPoint> {
    let db = setup(workload, customers);
    run_sweep_on(&db, workload, invocations)
}

/// Formats a sweep as the fixed-width table printed by `paper_figures`.
pub fn format_sweep(name: &str, points: &[SweepPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{name}\n"));
    out.push_str(&format!(
        "{:>12} {:>16} {:>16} {:>10} {:>14} {:>14}\n",
        "invocations",
        "original (ms)",
        "rewritten (ms)",
        "speedup",
        "opt-iter (ms)",
        "opt-rewr (ms)"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>12} {:>16.2} {:>16.2} {:>9.1}x {:>14.3} {:>14.3}\n",
            p.invocations,
            p.original.as_secs_f64() * 1e3,
            p.rewritten.as_secs_f64() * 1e3,
            p.speedup(),
            p.original_optimize.as_secs_f64() * 1e3,
            p.rewritten_optimize.as_secs_f64() * 1e3,
        ));
    }
    out
}

/// Renders the optimizer's per-pass breakdown (timings, rule fire counts, fixpoint
/// iterations) for one decorrelated execution of the workload query.
pub fn pass_timing_table(db: &Database, workload: &Workload, invocations: usize) -> String {
    let sql = (workload.query)(invocations);
    let result = db
        .query_with(&sql, &QueryOptions::decorrelated())
        .expect("decorrelated execution");
    format!(
        "optimizer pass breakdown — {} ({} invocations)\n{}",
        workload.name,
        invocations,
        result.rewrite_report.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_tpch::experiment2;

    #[test]
    fn sweep_produces_consistent_row_counts() {
        let points = run_sweep(&experiment2(), 60, &[5, 20]);
        assert_eq!(points.len(), 2);
        assert!(points[0].original_rows <= points[1].original_rows);
        // The decorrelated run exercised the full pipeline; a zero duration would mean
        // the per-pass trace was lost on the way into the sweep point.
        assert!(points[0].rewritten_optimize > Duration::ZERO);
        assert!(points[0].original_optimize > Duration::ZERO);
        let table = format_sweep("test", &points);
        assert!(table.contains("invocations"));
        assert!(table.contains("opt-rewr (ms)"));
    }

    #[test]
    fn pass_timing_table_reports_every_pass() {
        let workload = experiment2();
        let db = setup(&workload, 60);
        let table = pass_timing_table(&db, &workload, 10);
        for pass in ["normalize", "algebraize-merge", "apply-removal", "cleanup"] {
            assert!(table.contains(pass), "missing pass {pass} in:\n{table}");
        }
        assert!(table.contains("rule fire counts:"), "{table}");
    }
}
