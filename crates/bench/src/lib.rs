//! Shared helpers for the benchmark harness and the Criterion benches.
//!
//! Every experiment compares the same two strategies the paper compares:
//! the **original** query (iterative UDF invocation per tuple) and the **rewritten**
//! (decorrelated) query, over the same generated data, while sweeping the number of UDF
//! invocations.

use std::time::{Duration, Instant};

use decorr_engine::{Database, QueryOptions};
use decorr_tpch::{generate, TpchConfig, Workload};

/// One measured point of an experiment sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub invocations: usize,
    pub original: Duration,
    pub rewritten: Duration,
    pub original_rows: usize,
    pub rewritten_rows: usize,
}

impl SweepPoint {
    pub fn speedup(&self) -> f64 {
        let rewritten = self.rewritten.as_secs_f64().max(1e-9);
        self.original.as_secs_f64() / rewritten
    }
}

/// Builds the benchmark database at the given customer scale and installs a workload.
pub fn setup(workload: &Workload, customers: usize) -> Database {
    let config = TpchConfig::default().with_customers(customers);
    let mut db = generate(&config).expect("data generation");
    workload.install(&mut db).expect("workload install");
    db
}

/// Times one execution of the workload query under both strategies.
pub fn measure_point(db: &Database, workload: &Workload, invocations: usize) -> SweepPoint {
    let sql = (workload.query)(invocations);
    let start = Instant::now();
    let original = db
        .query_with(&sql, &QueryOptions::iterative())
        .expect("iterative execution");
    let original_time = start.elapsed();
    let start = Instant::now();
    let rewritten = db
        .query_with(&sql, &QueryOptions::decorrelated())
        .expect("decorrelated execution");
    let rewritten_time = start.elapsed();
    assert_eq!(
        original.rows.len(),
        rewritten.rows.len(),
        "strategies disagree on row count for {invocations} invocations"
    );
    SweepPoint {
        invocations,
        original: original_time,
        rewritten: rewritten_time,
        original_rows: original.rows.len(),
        rewritten_rows: rewritten.rows.len(),
    }
}

/// Runs a full sweep and returns the points (used by the `paper_figures` binary and the
/// EXPERIMENTS.md numbers).
pub fn run_sweep(workload: &Workload, customers: usize, invocations: &[usize]) -> Vec<SweepPoint> {
    let db = setup(workload, customers);
    invocations
        .iter()
        .map(|&n| measure_point(&db, workload, n))
        .collect()
}

/// Formats a sweep as the fixed-width table printed by `paper_figures`.
pub fn format_sweep(name: &str, points: &[SweepPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{name}\n"));
    out.push_str(&format!(
        "{:>12} {:>16} {:>16} {:>10}\n",
        "invocations", "original (ms)", "rewritten (ms)", "speedup"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>12} {:>16.2} {:>16.2} {:>9.1}x\n",
            p.invocations,
            p.original.as_secs_f64() * 1e3,
            p.rewritten.as_secs_f64() * 1e3,
            p.speedup()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_tpch::experiment2;

    #[test]
    fn sweep_produces_consistent_row_counts() {
        let points = run_sweep(&experiment2(), 60, &[5, 20]);
        assert_eq!(points.len(), 2);
        assert!(points[0].original_rows <= points[1].original_rows);
        let table = format_sweep("test", &points);
        assert!(table.contains("invocations"));
    }
}
