//! Shared helpers for the benchmark harness and the timing benches.
//!
//! Every experiment compares the same two strategies the paper compares:
//! the **original** query (iterative UDF invocation per tuple) and the **rewritten**
//! (decorrelated) query, over the same generated data, while sweeping the number of UDF
//! invocations. Since the engine routes every query through the optimizer's PassManager,
//! each measured point also carries the per-pass optimizer timings of both runs.

use std::thread;
use std::time::{Duration, Instant};

use decorr_common::{Row, SmallRng, Value};
use decorr_engine::{Database, Engine, QueryOptions, Session};
use decorr_optimizer::PlanCacheStats;
use decorr_tpch::{generate, TpchConfig, Workload};

pub mod json;

use json::Json;

/// One measured point of an experiment sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub invocations: usize,
    pub original: Duration,
    pub rewritten: Duration,
    pub original_rows: usize,
    pub rewritten_rows: usize,
    /// Time the optimizer pipeline spent inside its passes for the iterative run
    /// (normalisation only).
    pub original_optimize: Duration,
    /// Time the optimizer pipeline spent inside its passes for the decorrelated run
    /// (normalize + algebraize/merge + Apply removal + cleanup).
    pub rewritten_optimize: Duration,
}

impl SweepPoint {
    pub fn speedup(&self) -> f64 {
        let rewritten = self.rewritten.as_secs_f64().max(1e-9);
        self.original.as_secs_f64() / rewritten
    }
}

/// Builds the benchmark database at the given customer scale, runs a sampled
/// `ANALYZE` (benches measure the analyzed steady state, like a production system
/// would run), and installs a workload.
pub fn setup(workload: &Workload, customers: usize) -> Database {
    let config = TpchConfig::default().with_customers(customers);
    let mut db = generate(&config).expect("data generation");
    db.analyze();
    workload.install(&mut db).expect("workload install");
    // The classic experiments measure raw per-tuple invocation cost; the cross-query
    // memo would turn every arm after the first into cache hits. The UDF invocation
    // runtime has its own bench (`udf_bench`) that toggles these knobs explicitly.
    db.set_udf_memo_capacity(0);
    db
}

/// Times one execution of the workload query under both strategies.
pub fn measure_point(db: &Database, workload: &Workload, invocations: usize) -> SweepPoint {
    let sql = (workload.query)(invocations);
    // Both arms run with the UDF invocation runtime off: this sweep reproduces the
    // paper's iterative-vs-decorrelated comparison, where every tuple pays the call.
    let plain = decorr_exec::ExecConfig {
        udf_batching: false,
        udf_memoization: false,
        ..decorr_exec::ExecConfig::default()
    };
    let iterative = QueryOptions {
        exec_config: Some(plain.clone()),
        ..QueryOptions::iterative()
    };
    let decorrelated = QueryOptions {
        exec_config: Some(plain),
        ..QueryOptions::decorrelated()
    };
    let start = Instant::now();
    let original = db
        .query_with(&sql, &iterative)
        .expect("iterative execution");
    let original_time = start.elapsed();
    let start = Instant::now();
    let rewritten = db
        .query_with(&sql, &decorrelated)
        .expect("decorrelated execution");
    let rewritten_time = start.elapsed();
    assert_eq!(
        original.rows.len(),
        rewritten.rows.len(),
        "strategies disagree on row count for {invocations} invocations"
    );
    SweepPoint {
        invocations,
        original: original_time,
        rewritten: rewritten_time,
        original_rows: original.rows.len(),
        rewritten_rows: rewritten.rows.len(),
        original_optimize: original.rewrite_report.total_duration(),
        rewritten_optimize: rewritten.rewrite_report.total_duration(),
    }
}

/// Runs a full sweep over an already-built database.
pub fn run_sweep_on(db: &Database, workload: &Workload, invocations: &[usize]) -> Vec<SweepPoint> {
    invocations
        .iter()
        .map(|&n| measure_point(db, workload, n))
        .collect()
}

/// Runs a full sweep and returns the points (used by the `paper_figures` binary and the
/// EXPERIMENTS.md numbers).
pub fn run_sweep(workload: &Workload, customers: usize, invocations: &[usize]) -> Vec<SweepPoint> {
    let db = setup(workload, customers);
    run_sweep_on(&db, workload, invocations)
}

/// Formats a sweep as the fixed-width table printed by `paper_figures`.
pub fn format_sweep(name: &str, points: &[SweepPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{name}\n"));
    out.push_str(&format!(
        "{:>12} {:>16} {:>16} {:>10} {:>14} {:>14}\n",
        "invocations",
        "original (ms)",
        "rewritten (ms)",
        "speedup",
        "opt-iter (ms)",
        "opt-rewr (ms)"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>12} {:>16.2} {:>16.2} {:>9.1}x {:>14.3} {:>14.3}\n",
            p.invocations,
            p.original.as_secs_f64() * 1e3,
            p.rewritten.as_secs_f64() * 1e3,
            p.speedup(),
            p.original_optimize.as_secs_f64() * 1e3,
            p.rewritten_optimize.as_secs_f64() * 1e3,
        ));
    }
    out
}

/// Renders the optimizer's per-pass breakdown (timings, rule fire counts, fixpoint
/// iterations) for one decorrelated execution of the workload query. Clears the plan
/// cache first: the breakdown must show the real pipeline, not a single cache-hit row
/// left over from an earlier sweep of the same query shape.
pub fn pass_timing_table(db: &Database, workload: &Workload, invocations: usize) -> String {
    let sql = (workload.query)(invocations);
    db.plan_cache().clear();
    let result = db
        .query_with(&sql, &QueryOptions::decorrelated())
        .expect("decorrelated execution");
    format!(
        "optimizer pass breakdown — {} ({} invocations)\n{}",
        workload.name,
        invocations,
        result.rewrite_report.render()
    )
}

// ------------------------------------------------------------- optimizer latency bench

/// Cold vs warm optimizer latency for one workload query shape.
///
/// *Cold* is the per-pass pipeline time of the first execution (empty plan cache);
/// *warm* is the best observed optimize time across repeated executions of the same
/// query, which on a cache hit collapses to the cache-lookup cost recorded in the
/// synthetic `plan-cache` trace.
#[derive(Debug, Clone)]
pub struct OptimizerLatency {
    /// Stable key used to match baseline entries across PRs ("experiment2").
    pub key: String,
    /// Human-readable workload name.
    pub workload: String,
    pub customers: usize,
    pub invocations: usize,
    pub cold_optimize: Duration,
    pub warm_optimize: Duration,
    /// Repetitions each of the cold and warm points are minima over.
    pub runs: usize,
    /// Plan-cache counter snapshot after the warm runs.
    pub cache: PlanCacheStats,
}

impl OptimizerLatency {
    /// How many times cheaper the warm optimize path is than the cold one.
    pub fn warm_speedup(&self) -> f64 {
        self.cold_optimize.as_secs_f64() / self.warm_optimize.as_secs_f64().max(1e-9)
    }
}

/// Measures cold vs warm optimize latency for `workload` at the given scale. Both
/// points are minima over `runs` repetitions — single samples on shared CI runners are
/// too noisy for an absolute-ms gate. Cold runs clear the plan cache first (every one
/// must miss); warm runs repeat the identical query (every one must hit).
pub fn measure_optimizer_latency(
    key: &str,
    workload: &Workload,
    customers: usize,
    invocations: usize,
    runs: usize,
) -> OptimizerLatency {
    let db = setup(workload, customers);
    let sql = (workload.query)(invocations);
    let mut cold = Duration::MAX;
    for _ in 0..runs.max(1) {
        db.plan_cache().clear();
        let result = db.query(&sql).expect("cold execution");
        assert!(
            !result.rewrite_report.cache.expect("cache attached").hit,
            "execution after a cache clear must be a cache miss"
        );
        cold = cold.min(result.rewrite_report.total_duration());
    }
    // Warm runs: the best observed optimize time across repeats. Almost every run is
    // a cache hit; the runtime feedback loop may invalidate a shape *once* when its
    // first executions reveal a misestimate (that run re-optimizes and re-caches), so
    // warm hits are counted rather than asserted per run — the minimum still reflects
    // the cache-lookup cost as long as at least one run hit.
    let mut warm = Duration::MAX;
    let mut warm_hits = 0u64;
    for _ in 0..runs.max(1) {
        let result = db.query(&sql).expect("warm execution");
        if result.rewrite_report.cache.expect("cache attached").hit {
            warm_hits += 1;
            warm = warm.min(result.rewrite_report.total_duration());
        }
    }
    assert!(
        warm_hits >= 1,
        "repeated executions must hit the plan cache at least once \
         (0 of {runs} runs hit for {key})"
    );
    OptimizerLatency {
        key: key.to_string(),
        workload: workload.name.to_string(),
        customers,
        invocations,
        cold_optimize: cold,
        warm_optimize: warm,
        runs: runs.max(1),
        cache: db.plan_cache_stats(),
    }
}

/// Cold-optimize cost of per-pass static plan validation: the same pipeline driven
/// with validation off vs on, minima over repeated runs.
#[derive(Debug, Clone)]
pub struct ValidatorOverhead {
    /// Stable workload key ("experiment2").
    pub key: String,
    /// Best cold optimize time with validation off.
    pub cold_off: Duration,
    /// Best cold optimize time with per-pass validation on.
    pub cold_on: Duration,
    /// Repetitions each point is a minimum over.
    pub runs: usize,
}

impl ValidatorOverhead {
    /// Relative cost of validation: `(on - off) / off`, clamped at 0 (noise can make
    /// the validated arm *measure* faster).
    pub fn overhead_fraction(&self) -> f64 {
        let off = self.cold_off.as_secs_f64().max(1e-9);
        ((self.cold_on.as_secs_f64() - off) / off).max(0.0)
    }

    /// Absolute cost of validation in milliseconds (clamped at 0).
    pub fn overhead_ms(&self) -> f64 {
        (self.cold_on.as_secs_f64() - self.cold_off.as_secs_f64()).max(0.0) * 1e3
    }
}

/// Measures the cold-optimize overhead of per-pass plan validation for one workload
/// query shape. Both arms are the engine's full cold rewrite phase — plan cache
/// cleared before every run, timed as `rewrite_report.total_duration()` — i.e. the
/// same "cold optimize" that [`measure_optimizer_latency`] reports and that the
/// bench gate's 10% bound is a fraction *of*. Validation is forced off vs on per
/// query through [`QueryOptions::validate_plans`]; the arms are interleaved so
/// machine drift hits both alike, and each point is a minimum over `runs`.
pub fn measure_validator_overhead(
    key: &str,
    workload: &Workload,
    customers: usize,
    invocations: usize,
    runs: usize,
) -> ValidatorOverhead {
    let db = setup(workload, customers);
    let sql = (workload.query)(invocations);
    let mut cold_off = Duration::MAX;
    let mut cold_on = Duration::MAX;
    for _ in 0..runs.max(1) {
        for validate in [false, true] {
            db.plan_cache().clear();
            let options = QueryOptions {
                validate_plans: Some(validate),
                ..QueryOptions::default()
            };
            let result = db.query_with(&sql, &options).expect("cold execution");
            assert!(
                !result.rewrite_report.cache.expect("cache attached").hit,
                "execution after a cache clear must be a cache miss"
            );
            let elapsed = result.rewrite_report.total_duration();
            if validate {
                cold_on = cold_on.min(elapsed);
            } else {
                cold_off = cold_off.min(elapsed);
            }
        }
    }
    ValidatorOverhead {
        key: key.to_string(),
        cold_off,
        cold_on,
        runs: runs.max(1),
    }
}

/// Plan-cache behaviour under capacity pressure: more distinct query shapes than cache
/// slots, cycled for several rounds, plus one hot query re-issued between every other
/// query (the shape an LRU must keep resident).
#[derive(Debug, Clone)]
pub struct CachePressure {
    pub capacity: usize,
    pub distinct_queries: usize,
    pub rounds: usize,
    /// Hits observed for the hot query alone (expected ≈ all of its re-issues).
    pub hot_hits: u64,
    pub stats: PlanCacheStats,
}

/// Runs the capacity-pressure sweep: `distinct_queries` different invocation-count
/// variants of the workload query against a cache of `capacity` slots, `rounds` times,
/// interleaved with a hot query after every cold one.
pub fn run_cache_pressure(
    workload: &Workload,
    customers: usize,
    capacity: usize,
    distinct_queries: usize,
    rounds: usize,
) -> CachePressure {
    let mut db = setup(workload, customers);
    db.set_plan_cache_capacity(capacity);
    let hot_sql = (workload.query)(1);
    db.query(&hot_sql).expect("hot query warmup");
    let mut hot_hits = 0u64;
    for _ in 0..rounds {
        for i in 0..distinct_queries {
            // +2 so no variant collides with the hot query's invocation count.
            let sql = (workload.query)(i + 2);
            db.query(&sql).expect("pressure query");
            let hot = db.query(&hot_sql).expect("hot query");
            if hot.rewrite_report.cache.expect("cache attached").hit {
                hot_hits += 1;
            }
        }
    }
    let stats = db.plan_cache_stats();
    assert!(
        stats.entries <= capacity,
        "cache exceeded its capacity: {} > {}",
        stats.entries,
        capacity
    );
    CachePressure {
        capacity,
        distinct_queries,
        rounds,
        hot_hits,
        stats,
    }
}

/// Assembles the machine-readable `BENCH_optimizer.json` document.
pub fn optimizer_bench_json(
    mode: &str,
    latencies: &[OptimizerLatency],
    pressure: &CachePressure,
    overheads: &[ValidatorOverhead],
) -> Json {
    let workloads = latencies
        .iter()
        .map(|l| {
            Json::obj(vec![
                ("key", Json::str(&l.key)),
                ("workload", Json::str(&l.workload)),
                ("customers", Json::num(l.customers as f64)),
                ("invocations", Json::num(l.invocations as f64)),
                (
                    "cold_optimize_ms",
                    Json::num(l.cold_optimize.as_secs_f64() * 1e3),
                ),
                (
                    "warm_optimize_ms",
                    Json::num(l.warm_optimize.as_secs_f64() * 1e3),
                ),
                ("runs", Json::num(l.runs as f64)),
                ("warm_speedup", Json::num(l.warm_speedup())),
                ("cache_hits", Json::num(l.cache.hits as f64)),
                ("cache_misses", Json::num(l.cache.misses as f64)),
            ])
        })
        .collect();
    let validator = overheads
        .iter()
        .map(|o| {
            Json::obj(vec![
                ("key", Json::str(&o.key)),
                ("cold_off_ms", Json::num(o.cold_off.as_secs_f64() * 1e3)),
                ("cold_on_ms", Json::num(o.cold_on.as_secs_f64() * 1e3)),
                ("overhead_ms", Json::num(o.overhead_ms())),
                ("overhead_fraction", Json::num(o.overhead_fraction())),
                ("runs", Json::num(o.runs as f64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema_version", Json::num(1.0)),
        ("mode", Json::str(mode)),
        ("workloads", Json::Arr(workloads)),
        ("validator_overhead", Json::Arr(validator)),
        (
            "capacity_pressure",
            Json::obj(vec![
                ("capacity", Json::num(pressure.capacity as f64)),
                (
                    "distinct_queries",
                    Json::num(pressure.distinct_queries as f64),
                ),
                ("rounds", Json::num(pressure.rounds as f64)),
                ("hot_hits", Json::num(pressure.hot_hits as f64)),
                ("hits", Json::num(pressure.stats.hits as f64)),
                ("misses", Json::num(pressure.stats.misses as f64)),
                ("evictions", Json::num(pressure.stats.evictions as f64)),
                ("entries", Json::num(pressure.stats.entries as f64)),
                ("hit_rate", Json::num(pressure.stats.hit_rate())),
            ]),
        ),
    ])
}

// -------------------------------------------------------------- executor latency bench

/// Serial vs parallel end-to-end latency of one workload query, both execution
/// strategies, at one TPC-H scale factor.
#[derive(Debug, Clone)]
pub struct ExecutorLatency {
    /// Stable key used to match baseline entries across PRs ("experiment2_sf1").
    pub key: String,
    pub workload: String,
    pub scale: f64,
    pub customers: usize,
    pub invocations: usize,
    /// Worker-pool size of the parallel arm.
    pub threads: usize,
    pub serial_iterative: Duration,
    pub parallel_iterative: Duration,
    pub serial_decorrelated: Duration,
    pub parallel_decorrelated: Duration,
    /// Repetitions each point is a minimum over.
    pub runs: usize,
}

impl ExecutorLatency {
    pub fn iterative_speedup(&self) -> f64 {
        self.serial_iterative.as_secs_f64() / self.parallel_iterative.as_secs_f64().max(1e-9)
    }

    pub fn decorrelated_speedup(&self) -> f64 {
        self.serial_decorrelated.as_secs_f64() / self.parallel_decorrelated.as_secs_f64().max(1e-9)
    }

    /// The better of the two strategies' parallel speedups (the CI gate's criterion).
    pub fn best_speedup(&self) -> f64 {
        self.iterative_speedup().max(self.decorrelated_speedup())
    }
}

/// Executor configuration used by both bench arms: a morsel size small enough that
/// even the smoke-scale outer tables (and the UDF-bearing projections over them, where
/// per-row work is heaviest) span several morsels per worker. The serial arm ignores
/// it — `parallelism: 1` is byte-for-byte the pre-parallel executor.
fn bench_exec_config(parallelism: usize) -> decorr_exec::ExecConfig {
    decorr_exec::ExecConfig {
        parallelism,
        morsel_size: 16,
        // The executor benches compare serial vs parallel cost of the *same* logical
        // work; batching/memoization collapse repeated arguments and would swamp that
        // comparison. `udf_bench` measures those knobs on their own axis.
        udf_batching: false,
        udf_memoization: false,
        ..decorr_exec::ExecConfig::default()
    }
}

/// Builds the benchmark database at a TPC-H scale factor (analyzed, like
/// [`setup`]) and installs a workload.
pub fn setup_scaled(workload: &Workload, scale: f64) -> Database {
    let config = decorr_tpch::TpchConfig::with_scale(scale);
    let mut db = generate(&config).expect("data generation");
    db.analyze();
    workload.install(&mut db).expect("workload install");
    // See `setup`: the legacy benches run with the cross-query memo off.
    db.set_udf_memo_capacity(0);
    db
}

/// Times one strategy end-to-end (optimize + execute) at the given pool size, as the
/// minimum over `runs` repetitions.
fn measure_exec_arm(
    db: &Database,
    sql: &str,
    options: &QueryOptions,
    parallelism: usize,
    runs: usize,
) -> (Duration, Vec<decorr_common::Row>) {
    let mut best = Duration::MAX;
    let mut rows = vec![];
    for _ in 0..runs.max(1) {
        let options = QueryOptions {
            exec_config: Some(bench_exec_config(parallelism)),
            ..options.clone()
        };
        let start = Instant::now();
        let result = db.query_with(sql, &options).expect("bench execution");
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
        rows = result.rows;
    }
    (best, rows)
}

/// Measures serial vs parallel end-to-end latency for `workload` at one scale factor,
/// both strategies, asserting that the parallel rows are byte-identical to serial.
pub fn measure_executor_latency(
    key: &str,
    workload: &Workload,
    scale: f64,
    invocations: usize,
    threads: usize,
    runs: usize,
) -> ExecutorLatency {
    let db = setup_scaled(workload, scale);
    let customers = db
        .catalog()
        .table("customer")
        .map(|t| t.row_count())
        .unwrap_or(0);
    let sql = (workload.query)(invocations);
    let (serial_iterative, serial_iter_rows) =
        measure_exec_arm(&db, &sql, &QueryOptions::iterative(), 1, runs);
    let (parallel_iterative, parallel_iter_rows) =
        measure_exec_arm(&db, &sql, &QueryOptions::iterative(), threads, runs);
    let (serial_decorrelated, serial_dec_rows) =
        measure_exec_arm(&db, &sql, &QueryOptions::decorrelated(), 1, runs);
    let (parallel_decorrelated, parallel_dec_rows) =
        measure_exec_arm(&db, &sql, &QueryOptions::decorrelated(), threads, runs);
    assert_eq!(
        serial_iter_rows, parallel_iter_rows,
        "{key}: parallel iterative rows diverged from serial"
    );
    assert_eq!(
        serial_dec_rows, parallel_dec_rows,
        "{key}: parallel decorrelated rows diverged from serial"
    );
    ExecutorLatency {
        key: key.to_string(),
        workload: workload.name.to_string(),
        scale,
        customers,
        invocations,
        threads,
        serial_iterative,
        parallel_iterative,
        serial_decorrelated,
        parallel_decorrelated,
        runs: runs.max(1),
    }
}

/// End-to-end decorrelated latency across a worker-count sweep (same database, same
/// query), for the bench JSON's `thread_sweep` section.
pub fn executor_thread_sweep(
    workload: &Workload,
    scale: f64,
    invocations: usize,
    threads: &[usize],
    runs: usize,
) -> Vec<(usize, Duration)> {
    let db = setup_scaled(workload, scale);
    let sql = (workload.query)(invocations);
    threads
        .iter()
        .map(|&t| {
            let (latency, _) = measure_exec_arm(&db, &sql, &QueryOptions::decorrelated(), t, runs);
            (t, latency)
        })
        .collect()
}

/// Worker-pool reuse across repeated queries — the persistent-pool payoff. The pool is
/// warmed once (eagerly, by `set_parallelism`); after that every query's `pool_spawns`
/// counter must be zero, where the previous scoped-thread design paid
/// `parallel_operators × threads` spawns per query.
#[derive(Debug, Clone)]
pub struct PoolReuse {
    pub threads: usize,
    pub queries: usize,
    /// Threads spawned to warm the pool (a one-off lifecycle cost).
    pub warmup_spawns: u64,
    /// Worker threads spawned per query once the pool is warm (0 = full reuse; this is
    /// the executor-bench acceptance metric).
    pub warm_spawns_per_query: u64,
    /// Parallel operators one warm query dispatches.
    pub parallel_operators_per_query: u64,
    /// Thread spawns per query the pre-pool scoped design would have paid
    /// (`parallel_operators × threads`).
    pub scoped_spawns_per_query: u64,
    /// Pool batches executed across the measured queries.
    pub batches_run: u64,
}

/// Runs `queries` repetitions of the workload query against one database with a
/// persistent pool of `threads` workers and reports the spawn accounting.
pub fn measure_pool_reuse(
    workload: &Workload,
    scale: f64,
    invocations: usize,
    threads: usize,
    queries: usize,
) -> PoolReuse {
    let mut db = setup_scaled(workload, scale);
    db.set_parallelism(threads);
    let warmup_spawns = db.worker_pool_stats().threads_spawned;
    let batches_before = db.worker_pool_stats().batches_run;
    let sql = (workload.query)(invocations);
    let mut warm_spawns_per_query = 0u64;
    let mut parallel_operators_per_query = 0u64;
    for _ in 0..queries.max(1) {
        let options = QueryOptions {
            exec_config: Some(bench_exec_config(threads)),
            ..QueryOptions::default()
        };
        let result = db.query_with(&sql, &options).expect("pool-reuse query");
        warm_spawns_per_query = warm_spawns_per_query.max(result.exec_stats.pool_spawns);
        parallel_operators_per_query = result.exec_stats.parallel_operators;
    }
    PoolReuse {
        threads,
        queries: queries.max(1),
        warmup_spawns,
        warm_spawns_per_query,
        parallel_operators_per_query,
        scoped_spawns_per_query: parallel_operators_per_query * threads as u64,
        batches_run: db.worker_pool_stats().batches_run - batches_before,
    }
}

/// Pipelined (fused scan→filter→project chains) vs materialized (operator-at-a-time)
/// parallel execution of one workload query.
#[derive(Debug, Clone)]
pub struct PipelineComparison {
    pub key: String,
    pub threads: usize,
    pub pipelined: Duration,
    pub materialized: Duration,
    /// Operators fused per pipelined run (0 would mean fusion never engaged).
    pub pipelined_operators: u64,
    pub runs: usize,
}

impl PipelineComparison {
    pub fn speedup(&self) -> f64 {
        self.materialized.as_secs_f64() / self.pipelined.as_secs_f64().max(1e-9)
    }
}

/// Measures the workload query with pipeline fusion on vs off (iterative strategy —
/// the per-row UDF projection over a filtered scan is the fusion-heavy shape),
/// asserting byte-identical rows while timing both arms.
pub fn measure_pipelining(
    key: &str,
    workload: &Workload,
    scale: f64,
    invocations: usize,
    threads: usize,
    runs: usize,
) -> PipelineComparison {
    let db = setup_scaled(workload, scale);
    let sql = (workload.query)(invocations);
    // One untimed warm-up run so the first timed arm doesn't absorb the one-off costs
    // (plan-cache miss, pool spawn-up).
    let warmup = QueryOptions {
        exec_config: Some(bench_exec_config(threads)),
        ..QueryOptions::iterative()
    };
    db.query_with(&sql, &warmup).expect("pipelining warm-up");
    let arm = |fusion: bool| -> (Duration, Vec<decorr_common::Row>, u64) {
        let mut best = Duration::MAX;
        let mut rows = vec![];
        let mut pipelined_operators = 0;
        for _ in 0..runs.max(1) {
            let mut config = bench_exec_config(threads);
            config.pipeline_fusion = fusion;
            let options = QueryOptions {
                exec_config: Some(config),
                ..QueryOptions::iterative()
            };
            let start = Instant::now();
            let result = db.query_with(&sql, &options).expect("pipelining query");
            best = best.min(start.elapsed());
            pipelined_operators = result.exec_stats.pipelined_operators;
            rows = result.rows;
        }
        (best, rows, pipelined_operators)
    };
    let (pipelined, fused_rows, pipelined_operators) = arm(true);
    let (materialized, materialized_rows, _) = arm(false);
    assert_eq!(
        fused_rows, materialized_rows,
        "{key}: pipelined rows diverged from materialized"
    );
    PipelineComparison {
        key: key.to_string(),
        threads,
        pipelined,
        materialized,
        pipelined_operators,
        runs: runs.max(1),
    }
}

/// Scan and hash-join latency over one sharded table layout (serial vs parallel),
/// plus the shard-pruning hit rate of a selective range predicate after `ANALYZE`.
#[derive(Debug, Clone)]
pub struct ShardingLatency {
    pub shard_count: usize,
    pub rows: usize,
    /// Worker-pool size of the parallel arms.
    pub threads: usize,
    pub scan_serial: Duration,
    pub scan_parallel: Duration,
    pub join_serial: Duration,
    pub join_parallel: Duration,
    /// Shards skipped by the selective predicate (out of `shard_count`).
    pub pruned_shards: u64,
    pub runs: usize,
}

impl ShardingLatency {
    pub fn scan_speedup(&self) -> f64 {
        self.scan_serial.as_secs_f64() / self.scan_parallel.as_secs_f64().max(1e-9)
    }

    pub fn join_speedup(&self) -> f64 {
        self.join_serial.as_secs_f64() / self.join_parallel.as_secs_f64().max(1e-9)
    }

    /// Fraction of shards the selective predicate skipped (0.0 on a 1-shard table).
    pub fn pruning_hit_rate(&self) -> f64 {
        self.pruned_shards as f64 / self.shard_count.max(1) as f64
    }
}

/// Times one query end-to-end on a session at the given parallelism, minimum over
/// `runs`, returning the last run's result alongside.
fn measure_sharded_arm(
    session: &Session,
    sql: &str,
    parallelism: usize,
    runs: usize,
) -> (Duration, decorr_engine::QueryResult) {
    let options = QueryOptions {
        exec_config: Some(decorr_exec::ExecConfig {
            parallelism,
            ..decorr_exec::ExecConfig::default()
        }),
        ..QueryOptions::default()
    };
    let mut best = Duration::MAX;
    let mut result = None;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let r = session
            .query_with(sql, &options)
            .expect("sharding bench query");
        best = best.min(start.elapsed());
        result = Some(r);
    }
    (best, result.expect("at least one run"))
}

/// Measures scan and join throughput over a `shard_count`-way sharded fact table
/// (serial vs `threads`-worker parallel, byte-identity asserted), and the pruning
/// hit rate of a 1%-selective range predicate once the table is ANALYZEd.
pub fn measure_sharding(
    shard_count: usize,
    rows: usize,
    threads: usize,
    runs: usize,
) -> ShardingLatency {
    let engine = Engine::builder()
        .shard_count(shard_count)
        .parallelism(threads)
        .build();
    let session = engine.session();
    session
        .execute(
            "create table data(k int not null, g int, v float); \
             create table dim(g int not null, w float)",
        )
        .expect("sharding bench schema");
    let groups = 500usize;
    let fact: Vec<Row> = (0..rows as i64)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % groups as i64),
                Value::Float(i as f64 * 0.5),
            ])
        })
        .collect();
    engine.load_rows("data", fact).expect("fact rows");
    let dim: Vec<Row> = (0..groups as i64)
        .map(|g| Row::new(vec![Value::Int(g), Value::Float(g as f64)]))
        .collect();
    engine.load_rows("dim", dim).expect("dim rows");
    session.execute("analyze data").expect("analyze");

    let scan_sql = "select k, v from data where v >= 0.0";
    let (scan_serial, serial_scan) = measure_sharded_arm(&session, scan_sql, 1, runs);
    let (scan_parallel, parallel_scan) = measure_sharded_arm(&session, scan_sql, threads, runs);
    assert_eq!(
        serial_scan.rows, parallel_scan.rows,
        "sharded parallel scan diverged from serial at {shard_count} shards"
    );
    let join_sql = "select d.k from data d join dim m on d.g = m.g where m.w >= 0.0";
    let (join_serial, serial_join) = measure_sharded_arm(&session, join_sql, 1, runs);
    let (join_parallel, parallel_join) = measure_sharded_arm(&session, join_sql, threads, runs);
    assert_eq!(
        serial_join.rows, parallel_join.rows,
        "sharded parallel join diverged from serial at {shard_count} shards"
    );
    // 1%-selective range on the shard-ordered key: every shard but the first can
    // prove itself out via its cached min/max once ANALYZE has run.
    let selective = format!("select k from data where k <= {}", rows / 100);
    let (_, pruned_result) = measure_sharded_arm(&session, &selective, 1, 1);
    ShardingLatency {
        shard_count,
        rows,
        threads,
        scan_serial,
        scan_parallel,
        join_serial,
        join_parallel,
        pruned_shards: pruned_result.exec_stats.shards_pruned,
        runs: runs.max(1),
    }
}

/// Assembles the machine-readable `BENCH_executor.json` document.
pub fn executor_bench_json(
    mode: &str,
    host_cores: usize,
    latencies: &[ExecutorLatency],
    sweep: &[(usize, Duration)],
    pool_reuse: &PoolReuse,
    pipelining: &PipelineComparison,
    sharding: &[ShardingLatency],
) -> Json {
    let workloads = latencies
        .iter()
        .map(|l| {
            Json::obj(vec![
                ("key", Json::str(&l.key)),
                ("workload", Json::str(&l.workload)),
                ("scale", Json::num(l.scale)),
                ("customers", Json::num(l.customers as f64)),
                ("invocations", Json::num(l.invocations as f64)),
                ("threads", Json::num(l.threads as f64)),
                (
                    "serial_iterative_ms",
                    Json::num(l.serial_iterative.as_secs_f64() * 1e3),
                ),
                (
                    "parallel_iterative_ms",
                    Json::num(l.parallel_iterative.as_secs_f64() * 1e3),
                ),
                (
                    "serial_decorrelated_ms",
                    Json::num(l.serial_decorrelated.as_secs_f64() * 1e3),
                ),
                (
                    "parallel_decorrelated_ms",
                    Json::num(l.parallel_decorrelated.as_secs_f64() * 1e3),
                ),
                ("iterative_speedup", Json::num(l.iterative_speedup())),
                ("decorrelated_speedup", Json::num(l.decorrelated_speedup())),
                ("best_speedup", Json::num(l.best_speedup())),
                ("runs", Json::num(l.runs as f64)),
            ])
        })
        .collect();
    let sweep_json = sweep
        .iter()
        .map(|(threads, latency)| {
            Json::obj(vec![
                ("threads", Json::num(*threads as f64)),
                ("decorrelated_ms", Json::num(latency.as_secs_f64() * 1e3)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema_version", Json::num(2.0)),
        ("mode", Json::str(mode)),
        ("host_cores", Json::num(host_cores as f64)),
        ("workloads", Json::Arr(workloads)),
        ("thread_sweep", Json::Arr(sweep_json)),
        (
            "pool_reuse",
            Json::obj(vec![
                ("threads", Json::num(pool_reuse.threads as f64)),
                ("queries", Json::num(pool_reuse.queries as f64)),
                ("warmup_spawns", Json::num(pool_reuse.warmup_spawns as f64)),
                (
                    "warm_spawns_per_query",
                    Json::num(pool_reuse.warm_spawns_per_query as f64),
                ),
                (
                    "parallel_operators_per_query",
                    Json::num(pool_reuse.parallel_operators_per_query as f64),
                ),
                (
                    "scoped_spawns_per_query",
                    Json::num(pool_reuse.scoped_spawns_per_query as f64),
                ),
                ("batches_run", Json::num(pool_reuse.batches_run as f64)),
            ]),
        ),
        (
            "pipelining",
            Json::obj(vec![
                ("key", Json::str(&pipelining.key)),
                ("threads", Json::num(pipelining.threads as f64)),
                (
                    "pipelined_ms",
                    Json::num(pipelining.pipelined.as_secs_f64() * 1e3),
                ),
                (
                    "materialized_ms",
                    Json::num(pipelining.materialized.as_secs_f64() * 1e3),
                ),
                ("speedup", Json::num(pipelining.speedup())),
                (
                    "pipelined_operators",
                    Json::num(pipelining.pipelined_operators as f64),
                ),
                ("runs", Json::num(pipelining.runs as f64)),
            ]),
        ),
        (
            "sharding",
            Json::Arr(
                sharding
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("shard_count", Json::num(s.shard_count as f64)),
                            ("rows", Json::num(s.rows as f64)),
                            ("threads", Json::num(s.threads as f64)),
                            (
                                "scan_serial_ms",
                                Json::num(s.scan_serial.as_secs_f64() * 1e3),
                            ),
                            (
                                "scan_parallel_ms",
                                Json::num(s.scan_parallel.as_secs_f64() * 1e3),
                            ),
                            ("scan_speedup", Json::num(s.scan_speedup())),
                            (
                                "join_serial_ms",
                                Json::num(s.join_serial.as_secs_f64() * 1e3),
                            ),
                            (
                                "join_parallel_ms",
                                Json::num(s.join_parallel.as_secs_f64() * 1e3),
                            ),
                            ("join_speedup", Json::num(s.join_speedup())),
                            ("pruned_shards", Json::num(s.pruned_shards as f64)),
                            ("pruning_hit_rate", Json::num(s.pruning_hit_rate())),
                            ("runs", Json::num(s.runs as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Thresholds for [`check_executor_against_baseline`].
#[derive(Debug, Clone)]
pub struct ExecGateConfig {
    /// Fail when a serial end-to-end time exceeds `baseline × factor` …
    pub regression_factor: f64,
    /// … and by more than this absolute noise floor (end-to-end times are milliseconds
    /// to tens of milliseconds, so the floor is larger than the optimizer gate's).
    pub min_delta_ms: f64,
    /// Fail when no workload reaches this parallel speedup at the bench's thread
    /// count …
    pub min_parallel_speedup: f64,
    /// … but only when the current host has at least this many cores: a 1-core runner
    /// physically cannot show a parallel speedup, so the (machine-dependent) speedup
    /// gate reports itself as skipped instead of failing spuriously.
    pub min_cores_for_speedup_gate: usize,
    /// Fail when the sharded scan at 4 shards does not reach this parallel speedup at
    /// the bench's thread count (skipped-with-note below the core floor, like the
    /// workload speedup gate).
    pub min_sharded_scan_speedup: f64,
}

impl Default for ExecGateConfig {
    fn default() -> Self {
        ExecGateConfig {
            regression_factor: 2.0,
            min_delta_ms: 1.0,
            min_parallel_speedup: 1.5,
            min_cores_for_speedup_gate: 4,
            min_sharded_scan_speedup: 1.3,
        }
    }
}

/// Compares a fresh `BENCH_executor.json` document against the committed baseline.
/// Returns human-readable report lines on success, or the list of gate violations.
pub fn check_executor_against_baseline(
    current: &Json,
    baseline: &Json,
    config: &ExecGateConfig,
) -> Result<Vec<String>, Vec<String>> {
    let mut report = vec![];
    let mut failures = vec![];
    let empty: &[Json] = &[];
    let baseline_workloads = baseline
        .get("workloads")
        .and_then(Json::as_arr)
        .unwrap_or(empty);
    let current_workloads = current
        .get("workloads")
        .and_then(Json::as_arr)
        .unwrap_or(empty);
    if current_workloads.is_empty() {
        failures.push("current bench JSON contains no workloads".into());
    }
    let current_mode = current.get("mode").and_then(Json::as_str);
    let baseline_mode = baseline.get("mode").and_then(Json::as_str);
    if let (Some(current_mode), Some(baseline_mode)) = (current_mode, baseline_mode) {
        if current_mode != baseline_mode {
            failures.push(format!(
                "bench mode mismatch: current run is '{current_mode}' but the baseline \
                 is '{baseline_mode}' — regenerate the baseline in the same mode"
            ));
        }
    }
    for baseline_workload in baseline_workloads {
        let key = baseline_workload
            .get("key")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>");
        if !current_workloads
            .iter()
            .any(|c| c.get("key").and_then(Json::as_str) == Some(key))
        {
            failures.push(format!(
                "{key}: present in the baseline but missing from the current bench output"
            ));
        }
    }
    let mut best_speedup = 0.0f64;
    for workload in current_workloads {
        let key = workload
            .get("key")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>");
        best_speedup = best_speedup.max(
            workload
                .get("best_speedup")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        );
        // Gate both serial arms: a regression in either execution style is a real
        // end-to-end regression, independent of the worker pool.
        for field in ["serial_iterative_ms", "serial_decorrelated_ms"] {
            let value = workload
                .get(field)
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN);
            if !value.is_finite() {
                failures.push(format!("{key}: {field} is missing or not a finite number"));
                continue;
            }
            match baseline_workloads
                .iter()
                .find(|b| b.get("key").and_then(Json::as_str) == Some(key))
                .and_then(|b| b.get(field))
                .and_then(Json::as_f64)
            {
                None => report.push(format!("{key}: no baseline {field}; gate skipped")),
                Some(base) => {
                    let limit = base * config.regression_factor;
                    if value > limit && value - base > config.min_delta_ms {
                        failures.push(format!(
                            "{key}: {field} {value:.3} ms regressed more than {:.1}x \
                             against the baseline {base:.3} ms",
                            config.regression_factor
                        ));
                    } else {
                        report.push(format!(
                            "{key}: {field} {value:.3} ms (baseline {base:.3} ms, \
                             limit {limit:.3} ms) — ok"
                        ));
                    }
                }
            }
        }
    }
    // The speedup gate is machine-dependent: enforce it only on hosts with enough
    // cores to show one (CI's 4-core runners qualify; a 1-core sandbox does not).
    let host_cores = current
        .get("host_cores")
        .and_then(Json::as_f64)
        .unwrap_or(1.0) as usize;
    if host_cores >= config.min_cores_for_speedup_gate {
        if best_speedup < config.min_parallel_speedup {
            failures.push(format!(
                "no workload reached the required {:.1}x parallel speedup \
                 (best was {best_speedup:.2}x on a {host_cores}-core host)",
                config.min_parallel_speedup
            ));
        } else {
            report.push(format!(
                "parallel speedup gate: best {best_speedup:.2}x ≥ {:.1}x — ok",
                config.min_parallel_speedup
            ));
        }
    } else {
        report.push(format!(
            "parallel speedup gate skipped: host has {host_cores} core(s), \
             gate requires ≥ {} to be meaningful (best observed {best_speedup:.2}x)",
            config.min_cores_for_speedup_gate
        ));
    }
    // Sharded-scan gate: the 4-shard layout must not cost parallel scan throughput.
    match current
        .get("sharding")
        .and_then(Json::as_arr)
        .and_then(|entries| {
            entries
                .iter()
                .find(|e| e.get("shard_count").and_then(Json::as_f64) == Some(4.0))
        }) {
        None => failures.push(
            "sharding section has no 4-shard entry — the sharded scan gate cannot run".into(),
        ),
        Some(entry) => {
            let speedup = entry
                .get("scan_speedup")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            if host_cores >= config.min_cores_for_speedup_gate {
                if speedup < config.min_sharded_scan_speedup {
                    failures.push(format!(
                        "sharded scan at 4 shards reached only {speedup:.2}x parallel \
                         speedup (gate {:.1}x on a {host_cores}-core host)",
                        config.min_sharded_scan_speedup
                    ));
                } else {
                    report.push(format!(
                        "sharded scan gate: 4 shards at {speedup:.2}x ≥ {:.1}x — ok",
                        config.min_sharded_scan_speedup
                    ));
                }
            } else {
                report.push(format!(
                    "sharded scan gate skipped: host has {host_cores} core(s), \
                     gate requires ≥ {} (observed {speedup:.2}x)",
                    config.min_cores_for_speedup_gate
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

// ------------------------------------------------------------ cost-model accuracy bench

/// Cost-model accuracy over one workload query: per-node estimated-vs-actual
/// cardinality q-errors (max/median) plus the root q-error, for one statistics state
/// (unanalyzed or analyzed).
#[derive(Debug, Clone)]
pub struct CostAccuracy {
    /// Nodes with both an estimate and a recorded actual.
    pub nodes_measured: usize,
    pub max_q_error: f64,
    pub median_q_error: f64,
    /// q-error of the executed plan's root cardinality estimate.
    pub root_q_error: f64,
}

/// Accuracy of one experiment in both statistics states.
#[derive(Debug, Clone)]
pub struct AccuracyComparison {
    pub key: String,
    pub workload: String,
    pub invocations: usize,
    pub unanalyzed: CostAccuracy,
    pub analyzed: CostAccuracy,
}

/// Measures per-node estimate accuracy of the workload query's iterative plan (the
/// scan/filter/project shapes whose selectivities the statistics subsystem serves).
/// Executes with per-node cardinality collection, pairs the actuals with
/// [`estimate_per_node`](decorr_optimizer::estimate_per_node) over the normalized
/// plan, and summarizes the q-errors.
pub fn measure_cost_accuracy(
    db: &Database,
    workload: &Workload,
    invocations: usize,
) -> CostAccuracy {
    use decorr_optimizer::{estimate_per_node, CostParams, PassManager};
    let sql = (workload.query)(invocations);
    let mut config = db.exec_config().clone();
    config.collect_cardinalities = true;
    let options = QueryOptions {
        exec_config: Some(config),
        ..QueryOptions::iterative()
    };
    let result = db.query_with(&sql, &options).expect("accuracy execution");
    let plan = decorr_parser::parse_and_plan(&sql).expect("plan");
    let catalog = db.catalog();
    let registry = db.registry();
    let provider = decorr_exec::CatalogProvider::new(&catalog, &registry);
    let normalized = PassManager::cleanup_pipeline()
        .optimize(&plan, &registry, &provider, Some(catalog.as_ref()))
        .expect("normalisation")
        .plan;
    let estimates = estimate_per_node(&normalized, &catalog, &registry, &CostParams::default());
    let mut q_errors: Vec<f64> = vec![];
    for estimate in &estimates {
        if let Some(actual) = result
            .node_cardinalities
            .iter()
            .find(|n| n.fingerprint == estimate.fingerprint)
        {
            q_errors.push(decorr_stats::q_error(
                estimate.cardinality,
                actual.mean_rows(),
            ));
        }
    }
    assert!(
        !q_errors.is_empty(),
        "no estimate/actual pairs for {}",
        workload.name
    );
    q_errors.sort_by(f64::total_cmp);
    CostAccuracy {
        nodes_measured: q_errors.len(),
        max_q_error: *q_errors.last().unwrap(),
        median_q_error: q_errors[q_errors.len() / 2],
        root_q_error: result.cardinality_q_error,
    }
}

/// Measures one experiment's cost-model accuracy unanalyzed and analyzed, over the
/// same generated data.
pub fn measure_accuracy_comparison(
    key: &str,
    workload: &Workload,
    scale: f64,
    invocations: usize,
) -> AccuracyComparison {
    let config = decorr_tpch::TpchConfig::with_scale(scale);
    let mut db = generate(&config).expect("data generation");
    workload.install(&mut db).expect("workload install");
    let unanalyzed = measure_cost_accuracy(&db, workload, invocations);
    db.analyze();
    let analyzed = measure_cost_accuracy(&db, workload, invocations);
    AccuracyComparison {
        key: key.to_string(),
        workload: workload.name.to_string(),
        invocations,
        unanalyzed,
        analyzed,
    }
}

fn accuracy_json(accuracy: &CostAccuracy) -> Json {
    Json::obj(vec![
        ("nodes_measured", Json::num(accuracy.nodes_measured as f64)),
        ("max_q_error", Json::num(accuracy.max_q_error)),
        ("median_q_error", Json::num(accuracy.median_q_error)),
        ("root_q_error", Json::num(accuracy.root_q_error)),
    ])
}

/// Assembles the machine-readable `BENCH_stats.json` document.
pub fn stats_bench_json(mode: &str, comparisons: &[AccuracyComparison]) -> Json {
    let experiments = comparisons
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("key", Json::str(&c.key)),
                ("workload", Json::str(&c.workload)),
                ("invocations", Json::num(c.invocations as f64)),
                ("unanalyzed", accuracy_json(&c.unanalyzed)),
                ("analyzed", accuracy_json(&c.analyzed)),
            ])
        })
        .collect();
    let overall_unanalyzed = comparisons
        .iter()
        .map(|c| c.unanalyzed.max_q_error)
        .fold(0.0, f64::max);
    let overall_analyzed = comparisons
        .iter()
        .map(|c| c.analyzed.max_q_error)
        .fold(0.0, f64::max);
    // The worst per-experiment median (not a pooled median): the summary answers
    // "is any experiment's typical estimate bad", matching the max-based gate.
    let worst_median_analyzed = comparisons
        .iter()
        .map(|c| c.analyzed.median_q_error)
        .fold(0.0, f64::max);
    Json::obj(vec![
        ("schema_version", Json::num(1.0)),
        ("mode", Json::str(mode)),
        ("experiments", Json::Arr(experiments)),
        (
            "overall",
            Json::obj(vec![
                ("unanalyzed_max_q_error", Json::num(overall_unanalyzed)),
                ("analyzed_max_q_error", Json::num(overall_analyzed)),
                (
                    "analyzed_worst_median_q_error",
                    Json::num(worst_median_analyzed),
                ),
            ]),
        ),
    ])
}

/// Thresholds for [`check_stats_against_baseline`].
#[derive(Debug, Clone)]
pub struct StatsGateConfig {
    /// Fail when the analyzed overall max q-error exceeds `baseline × factor`.
    /// q-errors are deterministic (seeded data, model estimates), so unlike the
    /// timing gates this is machine-independent.
    pub regression_factor: f64,
}

impl Default for StatsGateConfig {
    fn default() -> Self {
        StatsGateConfig {
            regression_factor: 2.0,
        }
    }
}

/// Compares a fresh `BENCH_stats.json` against the committed baseline. Two gates:
/// the *improvement invariant* — the analyzed overall max q-error must be strictly
/// below the unanalyzed one (histograms must actually help) — and a regression gate
/// on the analyzed max q-error vs the baseline.
pub fn check_stats_against_baseline(
    current: &Json,
    baseline: &Json,
    config: &StatsGateConfig,
) -> Result<Vec<String>, Vec<String>> {
    let mut report = vec![];
    let mut failures = vec![];
    let current_mode = current.get("mode").and_then(Json::as_str);
    let baseline_mode = baseline.get("mode").and_then(Json::as_str);
    if let (Some(current_mode), Some(baseline_mode)) = (current_mode, baseline_mode) {
        if current_mode != baseline_mode {
            failures.push(format!(
                "bench mode mismatch: current run is '{current_mode}' but the baseline \
                 is '{baseline_mode}' — regenerate the baseline in the same mode"
            ));
        }
    }
    let overall = |doc: &Json, field: &str| -> Option<f64> {
        doc.get("overall")
            .and_then(|o| o.get(field))
            .and_then(Json::as_f64)
    };
    let analyzed = overall(current, "analyzed_max_q_error");
    let unanalyzed = overall(current, "unanalyzed_max_q_error");
    match (analyzed, unanalyzed) {
        (Some(analyzed), Some(unanalyzed)) => {
            // Near-perfect estimates are exempt from the strictness: if the default
            // constants ever catch up to a q-error of ~1 the histograms have nothing
            // left to improve, which is not a failure.
            const PERFECT: f64 = 1.05;
            if analyzed >= unanalyzed && analyzed > PERFECT {
                failures.push(format!(
                    "improvement invariant violated: analyzed max q-error {analyzed:.2} \
                     is not strictly below the unanalyzed {unanalyzed:.2}"
                ));
            } else {
                report.push(format!(
                    "improvement invariant: analyzed max q-error {analyzed:.2} vs \
                     unanalyzed {unanalyzed:.2} — ok"
                ));
            }
            match overall(baseline, "analyzed_max_q_error") {
                None => report.push("no baseline analyzed_max_q_error; gate skipped".into()),
                Some(base) => {
                    let limit = base * config.regression_factor;
                    if analyzed > limit {
                        failures.push(format!(
                            "analyzed max q-error {analyzed:.2} regressed more than \
                             {:.1}x against the baseline {base:.2}",
                            config.regression_factor
                        ));
                    } else {
                        report.push(format!(
                            "analyzed max q-error {analyzed:.2} (baseline {base:.2}, \
                             limit {limit:.2}) — ok"
                        ));
                    }
                }
            }
        }
        _ => failures.push("current bench JSON is missing the overall q-error summary".into()),
    }
    // Every baseline experiment must still be measured.
    let empty: &[Json] = &[];
    let current_experiments = current
        .get("experiments")
        .and_then(Json::as_arr)
        .unwrap_or(empty);
    for baseline_experiment in baseline
        .get("experiments")
        .and_then(Json::as_arr)
        .unwrap_or(empty)
    {
        let key = baseline_experiment
            .get("key")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>");
        if !current_experiments
            .iter()
            .any(|c| c.get("key").and_then(Json::as_str) == Some(key))
        {
            failures.push(format!(
                "{key}: present in the baseline but missing from the current bench output"
            ));
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

// ----------------------------------------------------------------------- CI perf gate

/// Thresholds for [`check_against_baseline`].
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Fail when cold optimize time exceeds `baseline × factor` …
    pub cold_regression_factor: f64,
    /// … and by more than this absolute noise floor. Keep it well below the committed
    /// baselines (sub-millisecond): a floor larger than the baseline would quietly
    /// loosen the advertised factor gate to `(baseline + floor) / baseline`.
    pub min_delta_ms: f64,
    /// Fail when the warm/cold speedup drops below this (machine-independent: the
    /// cache must keep the warm path an order of magnitude cheaper).
    pub min_warm_speedup: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            cold_regression_factor: 2.0,
            // Below every committed baseline (0.26-0.81 ms), so the 2x factor stays
            // the binding constraint and the floor only absorbs timer jitter.
            min_delta_ms: 0.25,
            min_warm_speedup: 10.0,
        }
    }
}

/// Compares a fresh `BENCH_optimizer.json` document against the committed baseline.
/// Returns human-readable report lines on success, or the list of gate violations.
pub fn check_against_baseline(
    current: &Json,
    baseline: &Json,
    config: &GateConfig,
) -> Result<Vec<String>, Vec<String>> {
    let mut report = vec![];
    let mut failures = vec![];
    let empty: &[Json] = &[];
    let baseline_workloads = baseline
        .get("workloads")
        .and_then(Json::as_arr)
        .unwrap_or(empty);
    let current_workloads = current
        .get("workloads")
        .and_then(Json::as_arr)
        .unwrap_or(empty);
    if current_workloads.is_empty() {
        failures.push("current bench JSON contains no workloads".into());
    }
    // Smoke and full runs use different scales; comparing across modes is meaningless
    // (spurious failures one way, a trivially-passing gate the other).
    let current_mode = current.get("mode").and_then(Json::as_str);
    let baseline_mode = baseline.get("mode").and_then(Json::as_str);
    if let (Some(current_mode), Some(baseline_mode)) = (current_mode, baseline_mode) {
        if current_mode != baseline_mode {
            failures.push(format!(
                "bench mode mismatch: current run is '{current_mode}' but the baseline \
                 is '{baseline_mode}' — regenerate the baseline in the same mode"
            ));
        }
    }
    // A workload that exists in the baseline but vanished from the fresh run must not
    // silently escape the gate (e.g. a bench refactor dropping or renaming a key).
    for baseline_workload in baseline_workloads {
        let key = baseline_workload
            .get("key")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>");
        if !current_workloads
            .iter()
            .any(|c| c.get("key").and_then(Json::as_str) == Some(key))
        {
            failures.push(format!(
                "{key}: present in the baseline but missing from the current bench output"
            ));
        }
    }
    for workload in current_workloads {
        let key = workload
            .get("key")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>");
        let cold = workload
            .get("cold_optimize_ms")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        if !cold.is_finite() {
            failures.push(format!(
                "{key}: cold_optimize_ms is missing or not a finite number"
            ));
            continue;
        }
        let speedup = workload
            .get("warm_speedup")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if speedup < config.min_warm_speedup {
            failures.push(format!(
                "{key}: warm-cache optimize speedup {speedup:.1}x is below the required \
                 {:.0}x — the plan cache is not being hit",
                config.min_warm_speedup
            ));
        }
        match baseline_workloads
            .iter()
            .find(|b| b.get("key").and_then(Json::as_str) == Some(key))
            .and_then(|b| b.get("cold_optimize_ms"))
            .and_then(Json::as_f64)
        {
            None => report.push(format!("{key}: no baseline entry; cold gate skipped")),
            Some(base_cold) => {
                let limit = base_cold * config.cold_regression_factor;
                if cold > limit && cold - base_cold > config.min_delta_ms {
                    failures.push(format!(
                        "{key}: cold optimize time {cold:.3} ms regressed more than \
                         {:.1}x against the baseline {base_cold:.3} ms",
                        config.cold_regression_factor
                    ));
                } else {
                    report.push(format!(
                        "{key}: cold {cold:.3} ms (baseline {base_cold:.3} ms, limit \
                         {limit:.3} ms) · warm speedup {speedup:.1}x — ok"
                    ));
                }
            }
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

// ------------------------------------------------------------ UDF invocation runtime

/// One arm of a UDF-runtime comparison: wall clock plus the executor's invocation
/// accounting for the run the timing came from.
#[derive(Debug, Clone)]
pub struct UdfArmStats {
    pub duration: Duration,
    pub invocations: u64,
    pub memo_hits: u64,
    pub dedup_hits: u64,
    pub batch_evals: u64,
}

impl UdfArmStats {
    /// Fraction of UDF calls answered from a cache instead of evaluating the body.
    pub fn hit_rate(&self) -> f64 {
        let calls = self.invocations + self.memo_hits + self.dedup_hits;
        if calls == 0 {
            return 0.0;
        }
        (self.memo_hits + self.dedup_hits) as f64 / calls as f64
    }
}

/// Runtime-on vs runtime-off latency of one workload query under both strategies.
#[derive(Debug, Clone)]
pub struct UdfRuntimeComparison {
    pub key: String,
    pub workload: String,
    pub invocations: usize,
    pub iterative_off: UdfArmStats,
    pub iterative_on: UdfArmStats,
    pub decorrelated_off: UdfArmStats,
    pub decorrelated_on: UdfArmStats,
    pub runs: usize,
}

impl UdfRuntimeComparison {
    pub fn iterative_speedup(&self) -> f64 {
        self.iterative_off.duration.as_secs_f64()
            / self.iterative_on.duration.as_secs_f64().max(1e-9)
    }

    pub fn decorrelated_speedup(&self) -> f64 {
        self.decorrelated_off.duration.as_secs_f64()
            / self.decorrelated_on.duration.as_secs_f64().max(1e-9)
    }
}

/// Both arms run at the same (parallel) pool size so the comparison isolates the
/// invocation runtime itself; with a serial executor the batch pre-pass — which fans
/// distinct argument tuples onto the worker pool — would never engage.
fn udf_arm_options(base: &QueryOptions, enabled: bool) -> QueryOptions {
    QueryOptions {
        exec_config: Some(decorr_exec::ExecConfig {
            parallelism: 4,
            morsel_size: 16,
            udf_batching: enabled,
            udf_memoization: enabled,
            ..decorr_exec::ExecConfig::default()
        }),
        ..base.clone()
    }
}

/// Times one strategy with the UDF runtime on or off, as the minimum over `runs`
/// repetitions, returning the rows for the caller's byte-identity check.
fn measure_udf_arm(
    db: &Database,
    sql: &str,
    base: &QueryOptions,
    enabled: bool,
    runs: usize,
) -> (UdfArmStats, Vec<decorr_common::Row>) {
    let options = udf_arm_options(base, enabled);
    let mut best: Option<UdfArmStats> = None;
    let mut rows = vec![];
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let result = db.query_with(sql, &options).expect("udf bench execution");
        let arm = arm_stats(&result, start.elapsed());
        if best.as_ref().is_none_or(|b| arm.duration < b.duration) {
            best = Some(arm);
        }
        rows = result.rows;
    }
    (best.expect("at least one run"), rows)
}

fn arm_stats(result: &decorr_engine::QueryResult, duration: Duration) -> UdfArmStats {
    UdfArmStats {
        duration,
        invocations: result.exec_stats.udf_invocations,
        memo_hits: result.exec_stats.udf_memo_hits,
        dedup_hits: result.exec_stats.udf_dedup_hits,
        batch_evals: result.exec_stats.udf_batch_evals,
    }
}

/// Measures one paper workload with the invocation runtime off vs on, both
/// strategies, asserting that the runtime never changes a byte of the output.
/// The off arms run first so they cannot be served by a warmed memo.
pub fn measure_udf_runtime(
    key: &str,
    workload: &Workload,
    customers: usize,
    invocations: usize,
    runs: usize,
) -> UdfRuntimeComparison {
    let mut db = setup(workload, customers);
    // `setup` switches the cross-query memo off for the legacy benches; this bench
    // measures it, so restore the engine's default capacity.
    db.set_udf_memo_capacity(8192);
    let sql = (workload.query)(invocations);
    let (iterative_off, iter_off_rows) =
        measure_udf_arm(&db, &sql, &QueryOptions::iterative(), false, runs);
    let (decorrelated_off, dec_off_rows) =
        measure_udf_arm(&db, &sql, &QueryOptions::decorrelated(), false, runs);
    let (iterative_on, iter_on_rows) =
        measure_udf_arm(&db, &sql, &QueryOptions::iterative(), true, runs);
    let (decorrelated_on, dec_on_rows) =
        measure_udf_arm(&db, &sql, &QueryOptions::decorrelated(), true, runs);
    assert_eq!(
        iter_off_rows, iter_on_rows,
        "{key}: the UDF runtime changed the iterative plan's rows"
    );
    assert_eq!(
        dec_off_rows, dec_on_rows,
        "{key}: the UDF runtime changed the decorrelated plan's rows"
    );
    UdfRuntimeComparison {
        key: key.to_string(),
        workload: workload.name.to_string(),
        invocations,
        iterative_off,
        iterative_on,
        decorrelated_off,
        decorrelated_on,
        runs: runs.max(1),
    }
}

/// One point of the distinct-argument-ratio sweep: `rows` probe tuples drawing their
/// UDF argument from `distinct_args` distinct values.
#[derive(Debug, Clone)]
pub struct RepeatedArgPoint {
    pub distinct_ratio: f64,
    pub rows: usize,
    pub distinct_args: usize,
    pub off: UdfArmStats,
    pub on: UdfArmStats,
}

impl RepeatedArgPoint {
    pub fn speedup(&self) -> f64 {
        self.off.duration.as_secs_f64() / self.on.duration.as_secs_f64().max(1e-9)
    }
}

/// Builds the repeated-argument workload: a `probes` table whose `grp` column takes
/// `distinct_args` distinct values, and a pure data-dependent UDF whose body scans an
/// unindexed `items` table — expensive enough per call that evaluation cost, not
/// call dispatch, dominates.
pub fn repeated_arg_db(rows: usize, distinct_args: usize, items: usize) -> Database {
    let mut db = Database::new();
    db.execute(
        "create table items(id int not null, grp int, val float); \
         create table probes(id int not null, grp int)",
    )
    .expect("repeated-arg schema");
    let mut rng = decorr_common::SmallRng::seed_from_u64(0x5eed_0dfb);
    let item_rows: Vec<decorr_common::Row> = (0..items)
        .map(|i| {
            decorr_common::Row::new(vec![
                decorr_common::Value::Int(i as i64),
                decorr_common::Value::Int(rng.gen_range_i64(0, distinct_args.max(1) as i64)),
                decorr_common::Value::Float(rng.gen_range_f64(1.0, 100.0)),
            ])
        })
        .collect();
    db.load_rows("items", item_rows).expect("items load");
    let probe_rows: Vec<decorr_common::Row> = (0..rows)
        .map(|i| {
            decorr_common::Row::new(vec![
                decorr_common::Value::Int(i as i64),
                decorr_common::Value::Int(rng.gen_range_i64(0, distinct_args.max(1) as i64)),
            ])
        })
        .collect();
    db.load_rows("probes", probe_rows).expect("probes load");
    db.register_function(
        "create function group_score(int g) returns float as \
         begin \
           float total; \
           select sum(val) into :total from items where grp = :g; \
           if (total > 0) return total; \
           return 0.0; \
         end",
    )
    .expect("group_score registration");
    db.analyze();
    db
}

/// Measures one distinct-argument ratio of the repeated-argument workload on the
/// forced-iterative plan (the plan shape the runtime exists to rescue), asserting
/// byte-identical rows between the arms.
pub fn measure_repeated_args(
    rows: usize,
    distinct_ratio: f64,
    items: usize,
    runs: usize,
) -> RepeatedArgPoint {
    let distinct_args = ((rows as f64 * distinct_ratio).round() as usize).max(1);
    let mut db = repeated_arg_db(rows, distinct_args, items);
    let sql = "select id, grp, group_score(grp) as score from probes";
    let base = QueryOptions::iterative();
    let (off, off_rows) = measure_udf_arm(&db, sql, &base, false, runs);
    // Cold-memo arm: this sweep exists to show the *within-query* dedup effect of
    // the distinct-argument ratio, so the cross-query memo is emptied before every
    // repetition — otherwise every run after the first is pure memo hits and every
    // ratio measures the same (flat) thing.
    let options = udf_arm_options(&base, true);
    let mut best: Option<UdfArmStats> = None;
    let mut on_rows = vec![];
    for _ in 0..runs.max(1) {
        db.set_udf_memo_capacity(8192);
        let start = Instant::now();
        let result = db.query_with(sql, &options).expect("udf bench execution");
        let arm = arm_stats(&result, start.elapsed());
        if best.as_ref().is_none_or(|b| arm.duration < b.duration) {
            best = Some(arm);
        }
        on_rows = result.rows;
    }
    let on = best.expect("at least one run");
    assert_eq!(
        off_rows, on_rows,
        "ratio {distinct_ratio}: the UDF runtime changed the workload's rows"
    );
    RepeatedArgPoint {
        distinct_ratio,
        rows,
        distinct_args,
        off,
        on,
    }
}

fn udf_arm_json(arm: &UdfArmStats) -> Json {
    Json::obj(vec![
        ("ms", Json::num(arm.duration.as_secs_f64() * 1e3)),
        ("invocations", Json::num(arm.invocations as f64)),
        ("memo_hits", Json::num(arm.memo_hits as f64)),
        ("dedup_hits", Json::num(arm.dedup_hits as f64)),
        ("batch_evals", Json::num(arm.batch_evals as f64)),
        ("hit_rate", Json::num(arm.hit_rate())),
    ])
}

/// Assembles the machine-readable `BENCH_udf.json` document. The headline numbers
/// the gate reads are the repeated-argument sweep's best iterative speedup and that
/// point's cache hit rate (the hit rate is deterministic: it counts calls, not time).
pub fn udf_bench_json(
    mode: &str,
    comparisons: &[UdfRuntimeComparison],
    sweep: &[RepeatedArgPoint],
) -> Json {
    let experiments = comparisons
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("key", Json::str(&c.key)),
                ("workload", Json::str(&c.workload)),
                ("invocations", Json::num(c.invocations as f64)),
                ("runs", Json::num(c.runs as f64)),
                ("iterative_off", udf_arm_json(&c.iterative_off)),
                ("iterative_on", udf_arm_json(&c.iterative_on)),
                ("iterative_speedup", Json::num(c.iterative_speedup())),
                ("decorrelated_off", udf_arm_json(&c.decorrelated_off)),
                ("decorrelated_on", udf_arm_json(&c.decorrelated_on)),
                ("decorrelated_speedup", Json::num(c.decorrelated_speedup())),
            ])
        })
        .collect();
    let sweep_json = sweep
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("distinct_ratio", Json::num(p.distinct_ratio)),
                ("rows", Json::num(p.rows as f64)),
                ("distinct_args", Json::num(p.distinct_args as f64)),
                ("off", udf_arm_json(&p.off)),
                ("on", udf_arm_json(&p.on)),
                ("speedup", Json::num(p.speedup())),
            ])
        })
        .collect();
    let headline = sweep
        .iter()
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()));
    let (headline_speedup, headline_hit_rate, headline_ratio) = headline
        .map(|p| (p.speedup(), p.on.hit_rate(), p.distinct_ratio))
        .unwrap_or((0.0, 0.0, 1.0));
    Json::obj(vec![
        ("schema_version", Json::num(1.0)),
        ("mode", Json::str(mode)),
        ("experiments", Json::Arr(experiments)),
        ("repeated_args", Json::Arr(sweep_json)),
        (
            "overall",
            Json::obj(vec![
                ("headline_speedup", Json::num(headline_speedup)),
                ("headline_hit_rate", Json::num(headline_hit_rate)),
                ("headline_distinct_ratio", Json::num(headline_ratio)),
            ]),
        ),
    ])
}

/// Thresholds for [`check_udf_against_baseline`].
#[derive(Debug, Clone)]
pub struct UdfGateConfig {
    /// The improvement invariant: the repeated-argument workload's best iterative
    /// speedup (runtime on vs off) must reach at least this factor.
    pub min_speedup: f64,
    /// That same point's cache hit rate must reach this fraction. Hit rates count
    /// calls, not time, so this leg of the gate is machine-independent.
    pub min_hit_rate: f64,
    /// Fail when the headline speedup drops below `baseline / factor`.
    pub regression_factor: f64,
}

impl Default for UdfGateConfig {
    fn default() -> Self {
        UdfGateConfig {
            min_speedup: 5.0,
            min_hit_rate: 0.8,
            regression_factor: 2.0,
        }
    }
}

/// Compares a fresh `BENCH_udf.json` against the committed baseline. Three gates:
/// the improvement invariant (headline speedup ≥ `min_speedup` and headline hit rate
/// ≥ `min_hit_rate`), a regression gate on the headline speedup vs the baseline, and
/// baseline-key presence (a bench refactor must not silently un-gate a workload).
pub fn check_udf_against_baseline(
    current: &Json,
    baseline: &Json,
    config: &UdfGateConfig,
) -> Result<Vec<String>, Vec<String>> {
    let mut report = vec![];
    let mut failures = vec![];
    let current_mode = current.get("mode").and_then(Json::as_str);
    let baseline_mode = baseline.get("mode").and_then(Json::as_str);
    if let (Some(current_mode), Some(baseline_mode)) = (current_mode, baseline_mode) {
        if current_mode != baseline_mode {
            failures.push(format!(
                "bench mode mismatch: current run is '{current_mode}' but the baseline \
                 is '{baseline_mode}' — regenerate the baseline in the same mode"
            ));
        }
    }
    let overall = |doc: &Json, field: &str| -> Option<f64> {
        doc.get("overall")
            .and_then(|o| o.get(field))
            .and_then(Json::as_f64)
    };
    match (
        overall(current, "headline_speedup"),
        overall(current, "headline_hit_rate"),
    ) {
        (Some(speedup), Some(hit_rate)) => {
            if speedup < config.min_speedup {
                failures.push(format!(
                    "improvement invariant violated: headline speedup {speedup:.1}x is \
                     below the required {:.1}x",
                    config.min_speedup
                ));
            } else {
                report.push(format!(
                    "improvement invariant: headline speedup {speedup:.1}x \
                     (required {:.1}x) — ok",
                    config.min_speedup
                ));
            }
            if hit_rate < config.min_hit_rate {
                failures.push(format!(
                    "headline cache hit rate {hit_rate:.3} is below the required {:.2}",
                    config.min_hit_rate
                ));
            } else {
                report.push(format!(
                    "headline cache hit rate {hit_rate:.3} (required {:.2}) — ok",
                    config.min_hit_rate
                ));
            }
            match overall(baseline, "headline_speedup") {
                None => report.push("no baseline headline_speedup; gate skipped".into()),
                Some(base) => {
                    let floor = base / config.regression_factor;
                    if speedup < floor {
                        failures.push(format!(
                            "headline speedup {speedup:.1}x regressed more than {:.1}x \
                             against the baseline {base:.1}x",
                            config.regression_factor
                        ));
                    } else {
                        report.push(format!(
                            "headline speedup {speedup:.1}x (baseline {base:.1}x, floor \
                             {floor:.1}x) — ok"
                        ));
                    }
                }
            }
        }
        _ => failures.push("current bench JSON is missing the overall headline summary".into()),
    }
    let empty: &[Json] = &[];
    let current_experiments = current
        .get("experiments")
        .and_then(Json::as_arr)
        .unwrap_or(empty);
    for baseline_experiment in baseline
        .get("experiments")
        .and_then(Json::as_arr)
        .unwrap_or(empty)
    {
        let key = baseline_experiment
            .get("key")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>");
        if !current_experiments
            .iter()
            .any(|c| c.get("key").and_then(Json::as_str) == Some(key))
        {
            failures.push(format!(
                "{key}: present in the baseline but missing from the current bench output"
            ));
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

/// One serving-bench arm: `clients` concurrent [`Session`]s on a single shared
/// [`Engine`], each running a seeded mix of shared-shape UDF queries, private-table
/// inserts/queries and `ANALYZE`. All shapes are warmed before the measured phase, so
/// `plan_cache_hit_rate` is the *warm* cross-session rate (a call counter, not a
/// timing — that leg of the gate is machine-independent).
#[derive(Debug, Clone)]
pub struct ServingArm {
    pub key: String,
    pub clients: usize,
    pub ops_per_client: usize,
    /// Queries executed during the measured phase (inserts and ANALYZE excluded).
    pub queries: usize,
    pub inserts: usize,
    pub analyzes: usize,
    /// Wall-clock duration of the measured phase (all clients, spawn to join).
    pub duration: Duration,
    pub p50: Duration,
    pub p99: Duration,
    /// Plan-cache hits / lookups over the measured phase only.
    pub plan_cache_hit_rate: f64,
    /// Every query's rows matched the independently tracked expectation: the shared
    /// shape against a pre-stress reference, each private query against the client's
    /// own insert log.
    pub results_match: bool,
}

impl ServingArm {
    pub fn throughput_qps(&self) -> f64 {
        self.queries as f64 / self.duration.as_secs_f64().max(1e-9)
    }
}

/// What one client thread brings back from the measured phase.
struct ClientOutcome {
    latencies: Vec<Duration>,
    queries: usize,
    inserts: usize,
    analyzes: usize,
    ok: bool,
}

/// Per-client mutable state threaded from the warm-up into the measured phase, so the
/// equivalence model covers every row ever inserted into the client's private table.
struct ClientState {
    t: usize,
    next_id: i64,
    /// `(id, grp, amount)` of every row inserted into `events_<t>`, in order.
    inserted: Vec<(i64, i64, f64)>,
}

const SERVING_SHARED_SQL: &str = "select custkey, service_level(custkey) as level from customer";

const SERVING_UDF_SQL: &str = "create function service_level(int ckey) returns varchar(10) as \
     begin \
       float totalbusiness; string level; \
       select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
       if (totalbusiness > 200000) level = 'Platinum'; \
       else if (totalbusiness > 50000) level = 'Gold'; \
       else level = 'Regular'; \
       return level; \
     end";

/// Each client queries one fixed group of its private table, so the shape (SQL text
/// including the constant) stays plan-cache stable across the run.
fn serving_private_sql(t: usize) -> String {
    format!("select id, amount from events_{t} where grp = {}", t % 5)
}

/// Builds the shared serving fixture: `customer`/`orders` + the service-level UDF
/// (read-only during the stress) and one private `events_<t>` table per client.
fn serving_engine(clients: usize, customers: usize) -> Engine {
    // Per-query parallelism stays off: the concurrency under test is client threads
    // racing sessions, not morsel workers inside one query.
    let engine = Engine::builder().parallelism(1).build();
    let admin = engine.session();
    admin
        .execute(
            "create table customer(custkey int not null, name varchar(25)); \
             create table orders(orderkey int not null, custkey int, totalprice float); \
             create index on orders(custkey)",
        )
        .expect("serving schema");
    let rows: Vec<Row> = (1..=customers as i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::str(format!("Customer#{i}"))]))
        .collect();
    engine.load_rows("customer", rows).expect("customer rows");
    let mut orders = vec![];
    let mut orderkey = 0i64;
    for i in 1..=customers as i64 {
        // A skewed order count per customer populates all three service levels.
        for _ in 0..=(i % 7) {
            orderkey += 1;
            orders.push(Row::new(vec![
                Value::Int(orderkey),
                Value::Int(i),
                Value::Float(9_000.0 * (1 + i % 31) as f64),
            ]));
        }
    }
    engine.load_rows("orders", orders).expect("orders rows");
    for t in 0..clients {
        admin
            .execute(&format!(
                "create table events_{t}(id int not null, grp int, amount float)"
            ))
            .expect("private table");
    }
    admin.register_function(SERVING_UDF_SQL).expect("udf");
    engine
}

/// Inserts the client's next private row and records it in the equivalence model.
/// Amounts are exact binary fractions so the SQL literal round-trips bit-for-bit.
fn serving_insert(session: &Session, state: &mut ClientState) {
    state.next_id += 1;
    let id = state.next_id;
    let grp = id % 5;
    let amount = id as f64 * 0.5 + state.t as f64;
    session
        .execute(&format!(
            "insert into events_{} values ({id}, {grp}, {amount:?})",
            state.t
        ))
        .expect("private insert");
    state.inserted.push((id, grp, amount));
}

/// The rows `serving_private_sql` must return, canonicalized for comparison.
fn serving_expected_private(state: &ClientState) -> Vec<String> {
    let want = (state.t % 5) as i64;
    let mut rows: Vec<String> = state
        .inserted
        .iter()
        .filter(|(_, grp, _)| *grp == want)
        .map(|(id, _, amount)| {
            format!(
                "{:?}",
                Row::new(vec![Value::Int(*id), Value::Float(*amount)])
            )
        })
        .collect();
    rows.sort();
    rows
}

fn serving_query_private(session: &Session, state: &ClientState) -> (Duration, bool) {
    let start = Instant::now();
    let result = session
        .query(&serving_private_sql(state.t))
        .expect("private query");
    let elapsed = start.elapsed();
    let mut got: Vec<String> = result.rows.iter().map(|r| format!("{r:?}")).collect();
    got.sort();
    (elapsed, got == serving_expected_private(state))
}

fn serving_query_shared(session: &Session, reference: &str) -> (Duration, bool) {
    let start = Instant::now();
    let result = session.query(SERVING_SHARED_SQL).expect("shared query");
    let elapsed = start.elapsed();
    let got = result
        .canonical_projection(&["custkey", "level"])
        .expect("projection")
        .join("|");
    (elapsed, got == reference)
}

/// One client's measured phase: a seeded 70/15/14/1 mix of shared queries, private
/// inserts, private queries and ANALYZE (client 0 additionally fires one ANALYZE at
/// the midpoint, so every arm exercises plan invalidation at least once).
fn serving_client(
    session: &Session,
    mut state: ClientState,
    ops: usize,
    reference: &str,
) -> ClientOutcome {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE + state.t as u64);
    let mut outcome = ClientOutcome {
        latencies: vec![],
        queries: 0,
        inserts: 0,
        analyzes: 0,
        ok: true,
    };
    for step in 0..ops {
        let roll = rng.gen_range_i64(0, 100);
        if state.t == 0 && step == ops / 2 {
            session.execute("analyze events_0").expect("analyze");
            outcome.analyzes += 1;
            continue;
        }
        if roll < 70 {
            let (elapsed, ok) = serving_query_shared(session, reference);
            outcome.latencies.push(elapsed);
            outcome.queries += 1;
            outcome.ok &= ok;
        } else if roll < 85 {
            serving_insert(session, &mut state);
            outcome.inserts += 1;
        } else if roll < 99 {
            let (elapsed, ok) = serving_query_private(session, &state);
            outcome.latencies.push(elapsed);
            outcome.queries += 1;
            outcome.ok &= ok;
        } else {
            session
                .execute(&format!("analyze events_{}", state.t))
                .expect("analyze");
            outcome.analyzes += 1;
        }
    }
    outcome
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one serving arm: builds the fixture, warms every plan shape serially (the
/// first execution of a shape may invalidate its own cache entry on cold-statistics
/// feedback, so each shape runs twice), then races `clients` threads and measures
/// per-query latency, throughput and the warm plan-cache hit rate.
pub fn measure_serving(clients: usize, ops_per_client: usize, customers: usize) -> ServingArm {
    let engine = serving_engine(clients, customers);
    let sessions: Vec<Session> = (0..clients).map(|_| engine.session()).collect();
    let reference = engine
        .session()
        .query(SERVING_SHARED_SQL)
        .expect("reference query")
        .canonical_projection(&["custkey", "level"])
        .expect("projection")
        .join("|");

    // Warm-up (serial): two shared queries plus, per client, two seed inserts and two
    // private queries. Every measured plan shape is in the cache afterwards.
    let mut states: Vec<ClientState> = (0..clients)
        .map(|t| ClientState {
            t,
            next_id: 0,
            inserted: vec![],
        })
        .collect();
    for (t, state) in states.iter_mut().enumerate() {
        let session = &sessions[t];
        let (_, ok) = serving_query_shared(session, &reference);
        assert!(ok, "warm-up shared query diverged for client {t}");
        serving_query_shared(session, &reference);
        serving_insert(session, state);
        serving_insert(session, state);
        serving_query_private(session, state);
        let (_, ok) = serving_query_private(session, state);
        assert!(ok, "warm-up private query diverged for client {t}");
    }

    let before = engine.plan_cache_stats();
    let start = Instant::now();
    let handles: Vec<_> = states
        .into_iter()
        .zip(sessions)
        .map(|(state, session)| {
            let reference = reference.clone();
            thread::spawn(move || serving_client(&session, state, ops_per_client, &reference))
        })
        .collect();
    let outcomes: Vec<ClientOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let duration = start.elapsed();
    let after = engine.plan_cache_stats();

    let lookups = (after.hits - before.hits) + (after.misses - before.misses);
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        (after.hits - before.hits) as f64 / lookups as f64
    };
    let mut latencies: Vec<Duration> = outcomes.iter().flat_map(|o| o.latencies.clone()).collect();
    latencies.sort();
    ServingArm {
        key: format!("clients_{clients}"),
        clients,
        ops_per_client,
        queries: outcomes.iter().map(|o| o.queries).sum(),
        inserts: outcomes.iter().map(|o| o.inserts).sum(),
        analyzes: outcomes.iter().map(|o| o.analyzes).sum(),
        duration,
        p50: quantile(&latencies, 0.50),
        p99: quantile(&latencies, 0.99),
        plan_cache_hit_rate: hit_rate,
        results_match: outcomes.iter().all(|o| o.ok),
    }
}

fn serving_arm_json(arm: &ServingArm) -> Json {
    Json::obj(vec![
        ("key", Json::str(&arm.key)),
        ("clients", Json::num(arm.clients as f64)),
        ("ops_per_client", Json::num(arm.ops_per_client as f64)),
        ("queries", Json::num(arm.queries as f64)),
        ("inserts", Json::num(arm.inserts as f64)),
        ("analyzes", Json::num(arm.analyzes as f64)),
        ("duration_ms", Json::num(arm.duration.as_secs_f64() * 1e3)),
        ("p50_ms", Json::num(arm.p50.as_secs_f64() * 1e3)),
        ("p99_ms", Json::num(arm.p99.as_secs_f64() * 1e3)),
        ("throughput_qps", Json::num(arm.throughput_qps())),
        ("plan_cache_hit_rate", Json::num(arm.plan_cache_hit_rate)),
        ("results_match", Json::Bool(arm.results_match)),
    ])
}

/// Assembles the machine-readable `BENCH_serving.json` document. The headline the
/// gate reads is the most-concurrent arm's warm plan-cache hit rate plus an
/// all-arms result-equivalence flag — both deterministic call counters, not timings.
pub fn serving_bench_json(mode: &str, arms: &[ServingArm]) -> Json {
    let headline = arms.iter().max_by_key(|a| a.clients);
    let (warm_hit_rate, headline_clients, headline_qps) = headline
        .map(|a| (a.plan_cache_hit_rate, a.clients, a.throughput_qps()))
        .unwrap_or((0.0, 0, 0.0));
    Json::obj(vec![
        ("schema_version", Json::num(1.0)),
        ("mode", Json::str(mode)),
        (
            "arms",
            Json::Arr(arms.iter().map(serving_arm_json).collect()),
        ),
        (
            "overall",
            Json::obj(vec![
                ("warm_hit_rate", Json::num(warm_hit_rate)),
                ("headline_clients", Json::num(headline_clients as f64)),
                ("headline_throughput_qps", Json::num(headline_qps)),
                (
                    "all_results_match",
                    Json::Bool(arms.iter().all(|a| a.results_match)),
                ),
            ]),
        ),
    ])
}

/// Thresholds for [`check_serving_against_baseline`].
#[derive(Debug, Clone)]
pub struct ServingGateConfig {
    /// The most-concurrent arm's warm cross-session plan-cache hit rate must reach
    /// this fraction. Hit rates count lookups, so this leg is machine-independent.
    pub min_hit_rate: f64,
    /// Fail when an arm's p50 latency exceeds `baseline * factor` (and the floor).
    pub regression_factor: f64,
    /// Ignore latency regressions below this many milliseconds — sub-floor p50s are
    /// scheduler noise on shared CI runners.
    pub latency_floor_ms: f64,
}

impl Default for ServingGateConfig {
    fn default() -> Self {
        ServingGateConfig {
            min_hit_rate: 0.8,
            regression_factor: 3.0,
            latency_floor_ms: 25.0,
        }
    }
}

/// Compares a fresh `BENCH_serving.json` against the committed baseline. The
/// machine-independent legs come first: result equivalence must hold in **every**
/// arm and the warm hit rate must reach `min_hit_rate`. The latency leg is lenient
/// (factor + noise floor, tunable via `BENCH_GATE_FACTOR`), and baseline-key
/// presence keeps a bench refactor from silently un-gating an arm.
pub fn check_serving_against_baseline(
    current: &Json,
    baseline: &Json,
    config: &ServingGateConfig,
) -> Result<Vec<String>, Vec<String>> {
    let mut report = vec![];
    let mut failures = vec![];
    let current_mode = current.get("mode").and_then(Json::as_str);
    let baseline_mode = baseline.get("mode").and_then(Json::as_str);
    if let (Some(current_mode), Some(baseline_mode)) = (current_mode, baseline_mode) {
        if current_mode != baseline_mode {
            failures.push(format!(
                "bench mode mismatch: current run is '{current_mode}' but the baseline \
                 is '{baseline_mode}' — regenerate the baseline in the same mode"
            ));
        }
    }
    let empty: &[Json] = &[];
    let current_arms = current.get("arms").and_then(Json::as_arr).unwrap_or(empty);
    for arm in current_arms {
        let key = arm.get("key").and_then(Json::as_str).unwrap_or("<unnamed>");
        match arm.get("results_match").and_then(Json::as_bool) {
            Some(true) => report.push(format!("{key}: all query results matched — ok")),
            _ => failures.push(format!(
                "{key}: query results diverged from the tracked expectation \
                 (concurrent sessions returned wrong rows)"
            )),
        }
    }
    match current
        .get("overall")
        .and_then(|o| o.get("warm_hit_rate"))
        .and_then(Json::as_f64)
    {
        Some(hit_rate) if hit_rate >= config.min_hit_rate => report.push(format!(
            "warm cross-session plan-cache hit rate {hit_rate:.3} \
             (required {:.2}) — ok",
            config.min_hit_rate
        )),
        Some(hit_rate) => failures.push(format!(
            "warm cross-session plan-cache hit rate {hit_rate:.3} is below the \
             required {:.2}",
            config.min_hit_rate
        )),
        None => failures.push("current bench JSON is missing overall.warm_hit_rate".into()),
    }
    for baseline_arm in baseline.get("arms").and_then(Json::as_arr).unwrap_or(empty) {
        let key = baseline_arm
            .get("key")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>");
        let Some(current_arm) = current_arms
            .iter()
            .find(|c| c.get("key").and_then(Json::as_str) == Some(key))
        else {
            failures.push(format!(
                "{key}: present in the baseline but missing from the current bench output"
            ));
            continue;
        };
        let p50 = |arm: &Json| arm.get("p50_ms").and_then(Json::as_f64);
        if let (Some(current_p50), Some(baseline_p50)) = (p50(current_arm), p50(baseline_arm)) {
            let ceiling = (baseline_p50 * config.regression_factor).max(config.latency_floor_ms);
            if current_p50 > ceiling {
                failures.push(format!(
                    "{key}: p50 latency {current_p50:.2} ms regressed past \
                     {ceiling:.2} ms (baseline {baseline_p50:.2} ms, factor {:.1}x)",
                    config.regression_factor
                ));
            } else {
                report.push(format!(
                    "{key}: p50 {current_p50:.2} ms (baseline {baseline_p50:.2} ms, \
                     ceiling {ceiling:.2} ms) — ok"
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

/// One full persist-bench run: the same seeded serving-style write/read mix is driven
/// through a plain in-memory [`Engine`] and through one opened with a `data_dir` (WAL
/// on), then the durable engine is checkpointed, dropped and cold-opened again.
#[derive(Debug, Clone)]
pub struct PersistMeasurement {
    /// Operations in the measured mixed phase (inserts + queries + analyzes).
    pub ops: usize,
    /// Wall-clock of the mixed phase without durability.
    pub plain: Duration,
    /// Wall-clock of the identical mixed phase with WAL logging on.
    pub durable: Duration,
    /// WAL bytes appended during the durable mixed phase.
    pub wal_bytes_appended: u64,
    /// WAL records appended during the durable mixed phase.
    pub wal_records_appended: u64,
    /// Wall-clock of `Engine::checkpoint` over the populated catalog.
    pub checkpoint: Duration,
    /// Size of the snapshot the checkpoint wrote.
    pub snapshot_bytes: u64,
    /// Wall-clock of the cold open (snapshot load + WAL replay).
    pub reopen: Duration,
    /// WAL records replayed by the cold open (writes landed after the checkpoint).
    pub wal_records_replayed: u64,
    /// The reopened engine answered the reference queries byte-identically.
    pub restore_match: bool,
}

impl PersistMeasurement {
    /// WAL overhead of the mixed phase, in percent of the plain run.
    pub fn wal_overhead_pct(&self) -> f64 {
        let plain = self.plain.as_secs_f64().max(1e-9);
        (self.durable.as_secs_f64() - plain) / plain * 100.0
    }
}

/// A self-cleaning scratch directory for the durable arms.
struct BenchDir(std::path::PathBuf);

impl BenchDir {
    fn new(tag: &str) -> BenchDir {
        let dir =
            std::env::temp_dir().join(format!("decorr-persist-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("bench scratch dir");
        BenchDir(dir)
    }
}

impl Drop for BenchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn persist_schema(engine: &Engine) {
    let session = engine.session();
    session
        .execute(
            "create table customer(custkey int not null, name varchar(25)); \
             create table orders(orderkey int not null, custkey int, totalprice float); \
             create index on orders(custkey)",
        )
        .expect("persist bench schema");
    session
        .register_function(
            "create function total_business(int ckey) returns float as \
             begin return select sum(totalprice) from orders where custkey = :ckey; end",
        )
        .expect("persist bench udf");
}

/// The seeded mixed phase: ~70% single-row order inserts, ~25% UDF/point queries,
/// ~5% ANALYZE. Identical op sequence for every engine (same seed), so the plain and
/// durable runs do exactly the same work apart from WAL appends.
fn persist_mixed_phase(engine: &Engine, ops: usize, customers: i64) -> Duration {
    let session = engine.session();
    let mut rng = SmallRng::seed_from_u64(0x9E125_7001);
    let mut orderkey = 0i64;
    let start = Instant::now();
    for _ in 0..ops {
        let roll = rng.gen_range_i64(0, 100);
        let ckey = 1 + rng.gen_range_i64(0, customers);
        if roll < 70 {
            orderkey += 1;
            let price = 250.0 * (1 + orderkey % 37) as f64;
            session
                .execute(&format!(
                    "insert into orders values ({orderkey}, {ckey}, {price:?})"
                ))
                .expect("bench insert");
        } else if roll < 95 {
            session
                .query(&format!(
                    "select custkey, total_business(custkey) as t from customer \
                     where custkey = {ckey}"
                ))
                .expect("bench query");
        } else {
            session.execute("analyze orders").expect("bench analyze");
        }
    }
    start.elapsed()
}

/// Reference rows the restored engine must reproduce byte-for-byte.
fn persist_reference(engine: &Engine) -> Vec<String> {
    let session = engine.session();
    let mut out = vec![];
    for sql in [
        "select custkey, total_business(custkey) as t from customer",
        "select orderkey, custkey, totalprice from orders",
    ] {
        let result = session.query(sql).expect("reference query");
        out.extend(result.rows.iter().map(|r| format!("{r:?}")));
    }
    out
}

/// Runs the full persist bench: plain vs durable mixed phase, checkpoint, post-
/// checkpoint writes, cold reopen with WAL replay and byte-equivalence check.
pub fn measure_persist(ops: usize, customers: i64) -> PersistMeasurement {
    let seed_customers = |engine: &Engine| {
        let rows: Vec<Row> = (1..=customers)
            .map(|i| Row::new(vec![Value::Int(i), Value::str(format!("Customer#{i}"))]))
            .collect();
        engine.load_rows("customer", rows).expect("customer rows");
    };

    // Arm 1: no durability.
    let plain_engine = Engine::builder().parallelism(1).build();
    persist_schema(&plain_engine);
    seed_customers(&plain_engine);
    let plain = persist_mixed_phase(&plain_engine, ops, customers);

    // Arm 2: identical ops with the WAL on.
    let dir = BenchDir::new("wal");
    let durable_engine = Engine::builder().parallelism(1).data_dir(&dir.0).build();
    persist_schema(&durable_engine);
    seed_customers(&durable_engine);
    let durable = persist_mixed_phase(&durable_engine, ops, customers);
    let mid = durable_engine.persist_stats();

    // Checkpoint the populated catalog, then land a few more writes so the cold open
    // exercises WAL replay on top of the snapshot.
    let checkpoint_start = Instant::now();
    let after_checkpoint = durable_engine.checkpoint().expect("checkpoint");
    let checkpoint = checkpoint_start.elapsed();
    let tail_writes = (ops / 20).max(3);
    let session = durable_engine.session();
    for i in 0..tail_writes {
        session
            .execute(&format!(
                "insert into orders values ({}, {}, 99.5)",
                1_000_000 + i as i64,
                1 + i as i64 % customers
            ))
            .expect("tail insert");
    }
    let reference = persist_reference(&durable_engine);
    drop(session);
    drop(durable_engine);

    let reopen_start = Instant::now();
    let reopened = Engine::builder()
        .parallelism(1)
        .data_dir(&dir.0)
        .try_build()
        .expect("cold open");
    let reopen = reopen_start.elapsed();
    let restored = reopened.persist_stats();
    let restore_match = persist_reference(&reopened) == reference;

    PersistMeasurement {
        ops,
        plain,
        durable,
        wal_bytes_appended: mid.wal_bytes_appended,
        wal_records_appended: mid.wal_records_appended,
        checkpoint,
        snapshot_bytes: after_checkpoint.snapshot_bytes,
        reopen,
        wal_records_replayed: restored.wal_records_replayed,
        restore_match,
    }
}

/// Renders the machine-readable `BENCH_persist.json` document.
pub fn persist_bench_json(mode: &str, m: &PersistMeasurement) -> Json {
    Json::obj(vec![
        ("schema_version", Json::num(1.0)),
        ("mode", Json::str(mode)),
        (
            "wal",
            Json::obj(vec![
                ("ops", Json::num(m.ops as f64)),
                ("plain_ms", Json::num(m.plain.as_secs_f64() * 1e3)),
                ("durable_ms", Json::num(m.durable.as_secs_f64() * 1e3)),
                ("overhead_pct", Json::num(m.wal_overhead_pct())),
                ("records_appended", Json::num(m.wal_records_appended as f64)),
                ("bytes_appended", Json::num(m.wal_bytes_appended as f64)),
            ]),
        ),
        (
            "checkpoint",
            Json::obj(vec![
                ("duration_ms", Json::num(m.checkpoint.as_secs_f64() * 1e3)),
                ("snapshot_bytes", Json::num(m.snapshot_bytes as f64)),
            ]),
        ),
        (
            "restore",
            Json::obj(vec![
                ("duration_ms", Json::num(m.reopen.as_secs_f64() * 1e3)),
                (
                    "wal_records_replayed",
                    Json::num(m.wal_records_replayed as f64),
                ),
                ("restore_match", Json::Bool(m.restore_match)),
            ]),
        ),
        (
            "overall",
            Json::obj(vec![
                ("restore_match", Json::Bool(m.restore_match)),
                ("wal_overhead_pct", Json::num(m.wal_overhead_pct())),
            ]),
        ),
    ])
}

/// Thresholds for [`check_persist_against_baseline`].
#[derive(Debug, Clone)]
pub struct PersistGateConfig {
    /// Maximum WAL overhead over the plain run, in percent.
    pub max_overhead_pct: f64,
    /// Ignore overhead when the absolute plain/durable delta is below this many
    /// milliseconds — percentage gates on sub-floor runs are scheduler noise.
    pub overhead_floor_ms: f64,
    /// Fail when checkpoint or reopen latency exceeds `baseline * factor` (and the
    /// floor).
    pub regression_factor: f64,
    /// Ignore latency regressions below this many milliseconds.
    pub latency_floor_ms: f64,
}

impl Default for PersistGateConfig {
    fn default() -> Self {
        PersistGateConfig {
            max_overhead_pct: 15.0,
            overhead_floor_ms: 25.0,
            regression_factor: 3.0,
            latency_floor_ms: 25.0,
        }
    }
}

/// Compares a fresh `BENCH_persist.json` against the committed baseline. The
/// machine-independent leg comes first: the cold-opened engine must have answered the
/// reference queries byte-identically. The WAL-overhead gate is a percentage with an
/// absolute noise floor; checkpoint/reopen latency use the lenient factor + floor
/// scheme the other benches use (tunable via `BENCH_GATE_FACTOR`).
pub fn check_persist_against_baseline(
    current: &Json,
    baseline: &Json,
    config: &PersistGateConfig,
) -> Result<Vec<String>, Vec<String>> {
    let mut report = vec![];
    let mut failures = vec![];
    let current_mode = current.get("mode").and_then(Json::as_str);
    let baseline_mode = baseline.get("mode").and_then(Json::as_str);
    if let (Some(current_mode), Some(baseline_mode)) = (current_mode, baseline_mode) {
        if current_mode != baseline_mode {
            failures.push(format!(
                "bench mode mismatch: current run is '{current_mode}' but the baseline \
                 is '{baseline_mode}' — regenerate the baseline in the same mode"
            ));
        }
    }
    match current
        .get("overall")
        .and_then(|o| o.get("restore_match"))
        .and_then(Json::as_bool)
    {
        Some(true) => report.push("cold reopen reproduced the reference rows — ok".into()),
        _ => failures.push(
            "cold reopen diverged from the pre-restart reference rows (or the field \
             is missing from the bench output)"
                .into(),
        ),
    }
    let wal_ms = |doc: &Json, field: &str| {
        doc.get("wal")
            .and_then(|w| w.get(field))
            .and_then(Json::as_f64)
    };
    match (wal_ms(current, "plain_ms"), wal_ms(current, "durable_ms")) {
        (Some(plain), Some(durable)) => {
            let delta = durable - plain;
            let overhead_pct = delta / plain.max(1e-9) * 100.0;
            if delta < config.overhead_floor_ms {
                report.push(format!(
                    "WAL overhead {delta:.2} ms is below the {:.0} ms noise floor — ok",
                    config.overhead_floor_ms
                ));
            } else if overhead_pct <= config.max_overhead_pct {
                report.push(format!(
                    "WAL overhead {overhead_pct:.1}% (allowed {:.0}%) — ok",
                    config.max_overhead_pct
                ));
            } else {
                failures.push(format!(
                    "WAL overhead {overhead_pct:.1}% exceeds the allowed {:.0}% \
                     (plain {plain:.2} ms, durable {durable:.2} ms)",
                    config.max_overhead_pct
                ));
            }
        }
        _ => failures.push("current bench JSON is missing wal.plain_ms/durable_ms".into()),
    }
    for (section, field) in [("checkpoint", "duration_ms"), ("restore", "duration_ms")] {
        let ms = |doc: &Json| {
            doc.get(section)
                .and_then(|s| s.get(field))
                .and_then(Json::as_f64)
        };
        if let (Some(current_ms), Some(baseline_ms)) = (ms(current), ms(baseline)) {
            let ceiling = (baseline_ms * config.regression_factor).max(config.latency_floor_ms);
            if current_ms > ceiling {
                failures.push(format!(
                    "{section} latency {current_ms:.2} ms regressed past {ceiling:.2} ms \
                     (baseline {baseline_ms:.2} ms, factor {:.1}x)",
                    config.regression_factor
                ));
            } else {
                report.push(format!(
                    "{section} {current_ms:.2} ms (baseline {baseline_ms:.2} ms, \
                     ceiling {ceiling:.2} ms) — ok"
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decorr_tpch::{experiment1, experiment2};

    #[test]
    fn sweep_produces_consistent_row_counts() {
        let points = run_sweep(&experiment2(), 60, &[5, 20]);
        assert_eq!(points.len(), 2);
        assert!(points[0].original_rows <= points[1].original_rows);
        // The decorrelated run exercised the full pipeline; a zero duration would mean
        // the per-pass trace was lost on the way into the sweep point.
        assert!(points[0].rewritten_optimize > Duration::ZERO);
        assert!(points[0].original_optimize > Duration::ZERO);
        let table = format_sweep("test", &points);
        assert!(table.contains("invocations"));
        assert!(table.contains("opt-rewr (ms)"));
    }

    #[test]
    fn optimizer_latency_measures_a_cached_warm_path() {
        let latency = measure_optimizer_latency("experiment2", &experiment2(), 60, 20, 5);
        assert!(latency.cache.hits >= 5, "{:?}", latency.cache);
        assert!(latency.cold_optimize > Duration::ZERO);
        assert!(
            latency.warm_optimize < latency.cold_optimize,
            "warm {:?} should undercut cold {:?}",
            latency.warm_optimize,
            latency.cold_optimize
        );
        let pressure = run_cache_pressure(&experiment2(), 60, 2, 4, 2);
        assert!(pressure.stats.evictions > 0, "{:?}", pressure.stats);
        // The LRU must keep the hot query resident. The runtime feedback loop may
        // cost the hot entry a couple of one-off recalibration misses (a learned-cost
        // generation move plus the hot shape's own q-error flag), so allow a small
        // shortfall from a perfect hit streak.
        let expected = (pressure.distinct_queries * pressure.rounds) as u64;
        assert!(
            pressure.hot_hits >= expected.saturating_sub(2),
            "the LRU must keep the hot query resident: hot_hits={} expected≈{expected} {:?}",
            pressure.hot_hits,
            pressure.stats
        );
        // The emitted JSON round-trips and carries the gate's required fields.
        let overhead = measure_validator_overhead("experiment2", &experiment2(), 60, 20, 3);
        assert!(overhead.cold_off > Duration::ZERO);
        assert!(overhead.overhead_fraction() >= 0.0);
        let doc = optimizer_bench_json("test", &[latency], &pressure, &[overhead]);
        let parsed = Json::parse(&doc.render()).unwrap();
        let workload = &parsed.get("workloads").unwrap().as_arr().unwrap()[0];
        assert_eq!(workload.get("key").unwrap().as_str(), Some("experiment2"));
        assert!(workload.get("cold_optimize_ms").unwrap().as_f64().unwrap() > 0.0);
        assert!(workload.get("warm_speedup").unwrap().as_f64().unwrap() > 1.0);
        let validator = &parsed.get("validator_overhead").unwrap().as_arr().unwrap()[0];
        assert_eq!(validator.get("key").unwrap().as_str(), Some("experiment2"));
        assert!(validator.get("cold_off_ms").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn perf_gate_passes_clean_runs_and_fails_regressions() {
        fn doc(cold_ms: f64, speedup: f64) -> Json {
            Json::obj(vec![(
                "workloads",
                Json::Arr(vec![Json::obj(vec![
                    ("key", Json::str("experiment2")),
                    ("cold_optimize_ms", Json::num(cold_ms)),
                    ("warm_speedup", Json::num(speedup)),
                ])]),
            )])
        }
        let config = GateConfig::default();
        let baseline = doc(10.0, 50.0);
        assert!(check_against_baseline(&doc(12.0, 50.0), &baseline, &config).is_ok());
        // >2x and >2ms over baseline: fail.
        let failures = check_against_baseline(&doc(25.0, 50.0), &baseline, &config).unwrap_err();
        assert!(failures[0].contains("regressed"), "{failures:?}");
        // Warm speedup collapse fails even with a fine cold time.
        let failures = check_against_baseline(&doc(10.0, 3.0), &baseline, &config).unwrap_err();
        assert!(failures[0].contains("speedup"), "{failures:?}");
        // Sub-floor absolute regressions on tiny baselines are absorbed as jitter…
        let tiny_baseline = doc(0.1, 50.0);
        assert!(check_against_baseline(&doc(0.3, 50.0), &tiny_baseline, &config).is_ok());
        // …but the floor sits below the committed baselines, so for those the 2x
        // factor is the binding constraint (0.6 ms vs 0.263 ms baseline must fail).
        let exp3_like = doc(0.263, 50.0);
        assert!(check_against_baseline(&doc(0.6, 50.0), &exp3_like, &config).is_err());
        // A workload missing from the baseline is reported but does not fail.
        let report = check_against_baseline(&doc(1.0, 50.0), &Json::obj(vec![]), &config)
            .expect("missing baseline entry is not a failure");
        assert!(report[0].contains("no baseline entry"), "{report:?}");
        // But a baseline workload that vanished from the current run DOES fail — a
        // bench refactor must not silently un-gate a tracked shape.
        let renamed = Json::obj(vec![(
            "workloads",
            Json::Arr(vec![Json::obj(vec![
                ("key", Json::str("experiment2_renamed")),
                ("cold_optimize_ms", Json::num(1.0)),
                ("warm_speedup", Json::num(50.0)),
            ])]),
        )]);
        let failures = check_against_baseline(&renamed, &baseline, &config).unwrap_err();
        assert!(
            failures
                .iter()
                .any(|f| f.contains("missing from the current")),
            "{failures:?}"
        );
        // A current workload without cold_optimize_ms fails instead of passing as NaN.
        let no_cold = Json::obj(vec![(
            "workloads",
            Json::Arr(vec![Json::obj(vec![
                ("key", Json::str("experiment2")),
                ("warm_speedup", Json::num(50.0)),
            ])]),
        )]);
        let failures = check_against_baseline(&no_cold, &baseline, &config).unwrap_err();
        assert!(
            failures.iter().any(|f| f.contains("not a finite number")),
            "{failures:?}"
        );
        // Comparing a smoke run against a full-mode baseline (or vice versa) fails.
        fn with_mode(mut doc: Json, mode: &str) -> Json {
            if let Json::Obj(map) = &mut doc {
                map.insert("mode".into(), Json::str(mode));
            }
            doc
        }
        let failures = check_against_baseline(
            &with_mode(doc(12.0, 50.0), "full"),
            &with_mode(doc(10.0, 50.0), "smoke"),
            &config,
        )
        .unwrap_err();
        assert!(
            failures.iter().any(|f| f.contains("mode mismatch")),
            "{failures:?}"
        );
    }

    #[test]
    fn executor_latency_measures_identical_rows_and_round_trips() {
        let latency = measure_executor_latency("experiment2_sf1", &experiment2(), 0.03, 20, 2, 2);
        assert!(latency.serial_iterative > Duration::ZERO);
        assert!(latency.serial_decorrelated > Duration::ZERO);
        assert!(latency.best_speedup() > 0.0);
        let sweep = executor_thread_sweep(&experiment2(), 0.03, 20, &[1, 2], 2);
        assert_eq!(sweep.len(), 2);
        let pool_reuse = measure_pool_reuse(&experiment2(), 0.03, 20, 2, 3);
        assert_eq!(pool_reuse.warmup_spawns, 2);
        assert_eq!(
            pool_reuse.warm_spawns_per_query, 0,
            "a warm persistent pool must not spawn per query: {pool_reuse:?}"
        );
        assert!(pool_reuse.batches_run > 0, "{pool_reuse:?}");
        let pipelining = measure_pipelining("experiment2_sf1", &experiment2(), 0.03, 20, 2, 2);
        assert!(
            pipelining.pipelined_operators > 0,
            "fusion must engage on the iterative projection: {pipelining:?}"
        );
        let sharding = [measure_sharding(4, 2000, 2, 2)];
        assert!(
            sharding[0].pruned_shards > 0,
            "the selective predicate must prune shards: {:?}",
            sharding[0]
        );
        let doc = executor_bench_json(
            "test",
            1,
            &[latency],
            &sweep,
            &pool_reuse,
            &pipelining,
            &sharding,
        );
        let parsed = Json::parse(&doc.render()).unwrap();
        let workload = &parsed.get("workloads").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            workload.get("key").unwrap().as_str(),
            Some("experiment2_sf1")
        );
        assert!(
            workload
                .get("serial_decorrelated_ms")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        assert_eq!(parsed.get("host_cores").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            parsed.get("thread_sweep").unwrap().as_arr().unwrap().len(),
            2
        );
        let reuse = parsed.get("pool_reuse").unwrap();
        assert_eq!(
            reuse.get("warm_spawns_per_query").unwrap().as_f64(),
            Some(0.0)
        );
        let pipe = parsed.get("pipelining").unwrap();
        assert!(pipe.get("pipelined_ms").unwrap().as_f64().unwrap() > 0.0);
        assert!(pipe.get("pipelined_operators").unwrap().as_f64().unwrap() > 0.0);
        let shard_entry = &parsed.get("sharding").unwrap().as_arr().unwrap()[0];
        assert_eq!(shard_entry.get("shard_count").unwrap().as_f64(), Some(4.0));
        assert!(shard_entry.get("scan_serial_ms").unwrap().as_f64().unwrap() > 0.0);
        assert!(shard_entry.get("pruned_shards").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn executor_gate_passes_clean_runs_and_fails_regressions() {
        fn doc_with_scan(host_cores: f64, serial_ms: f64, speedup: f64, scan_speedup: f64) -> Json {
            Json::obj(vec![
                ("host_cores", Json::num(host_cores)),
                (
                    "workloads",
                    Json::Arr(vec![Json::obj(vec![
                        ("key", Json::str("experiment2_sf1")),
                        ("serial_iterative_ms", Json::num(serial_ms)),
                        ("serial_decorrelated_ms", Json::num(serial_ms)),
                        ("best_speedup", Json::num(speedup)),
                    ])]),
                ),
                (
                    "sharding",
                    Json::Arr(vec![Json::obj(vec![
                        ("shard_count", Json::num(4.0)),
                        ("scan_speedup", Json::num(scan_speedup)),
                    ])]),
                ),
            ])
        }
        fn doc(host_cores: f64, serial_ms: f64, speedup: f64) -> Json {
            doc_with_scan(host_cores, serial_ms, speedup, 2.0)
        }
        let config = ExecGateConfig::default();
        let baseline = doc(4.0, 10.0, 2.0);
        // Within the factor: pass.
        assert!(check_executor_against_baseline(&doc(4.0, 12.0, 2.0), &baseline, &config).is_ok());
        // >2x and >1ms over baseline: fail.
        let failures =
            check_executor_against_baseline(&doc(4.0, 25.0, 2.0), &baseline, &config).unwrap_err();
        assert!(failures[0].contains("regressed"), "{failures:?}");
        // Speedup below 1.5x on a 4-core host: fail.
        let failures =
            check_executor_against_baseline(&doc(4.0, 10.0, 1.1), &baseline, &config).unwrap_err();
        assert!(failures[0].contains("speedup"), "{failures:?}");
        // Same speedup shortfall on a 1-core host: skipped, not failed.
        let report =
            check_executor_against_baseline(&doc(1.0, 10.0, 0.9), &baseline, &config).unwrap();
        assert!(report.iter().any(|l| l.contains("skipped")), "{report:?}");
        // Sharded scan below 1.3x on a 4-core host: fail; on 1 core: skipped.
        let failures = check_executor_against_baseline(
            &doc_with_scan(4.0, 10.0, 2.0, 1.05),
            &baseline,
            &config,
        )
        .unwrap_err();
        assert!(
            failures.iter().any(|f| f.contains("sharded scan")),
            "{failures:?}"
        );
        let report = check_executor_against_baseline(
            &doc_with_scan(1.0, 10.0, 2.0, 1.05),
            &baseline,
            &config,
        )
        .unwrap();
        assert!(
            report
                .iter()
                .any(|l| l.contains("sharded scan gate skipped")),
            "{report:?}"
        );
        // A current run without a 4-shard sharding entry cannot run the gate: fail.
        let failures = check_executor_against_baseline(
            &Json::obj(vec![
                ("host_cores", Json::num(4.0)),
                (
                    "workloads",
                    Json::Arr(vec![Json::obj(vec![
                        ("key", Json::str("experiment2_sf1")),
                        ("serial_iterative_ms", Json::num(10.0)),
                        ("serial_decorrelated_ms", Json::num(10.0)),
                        ("best_speedup", Json::num(2.0)),
                    ])]),
                ),
            ]),
            &baseline,
            &config,
        )
        .unwrap_err();
        assert!(
            failures.iter().any(|f| f.contains("no 4-shard entry")),
            "{failures:?}"
        );
        // A workload that vanished from the current run fails the gate.
        let renamed = Json::obj(vec![
            ("host_cores", Json::num(4.0)),
            (
                "workloads",
                Json::Arr(vec![Json::obj(vec![
                    ("key", Json::str("experiment2_sf9")),
                    ("serial_iterative_ms", Json::num(1.0)),
                    ("serial_decorrelated_ms", Json::num(1.0)),
                    ("best_speedup", Json::num(2.0)),
                ])]),
            ),
            (
                "sharding",
                Json::Arr(vec![Json::obj(vec![
                    ("shard_count", Json::num(4.0)),
                    ("scan_speedup", Json::num(2.0)),
                ])]),
            ),
        ]);
        let failures = check_executor_against_baseline(&renamed, &baseline, &config).unwrap_err();
        assert!(
            failures
                .iter()
                .any(|f| f.contains("missing from the current")),
            "{failures:?}"
        );
        // Mode mismatch fails.
        fn with_mode(mut doc: Json, mode: &str) -> Json {
            if let Json::Obj(map) = &mut doc {
                map.insert("mode".into(), Json::str(mode));
            }
            doc
        }
        let failures = check_executor_against_baseline(
            &with_mode(doc(4.0, 10.0, 2.0), "full"),
            &with_mode(doc(4.0, 10.0, 2.0), "smoke"),
            &config,
        )
        .unwrap_err();
        assert!(
            failures.iter().any(|f| f.contains("mode mismatch")),
            "{failures:?}"
        );
    }

    #[test]
    fn accuracy_comparison_improves_with_analyze_and_round_trips() {
        let comparison = measure_accuracy_comparison("experiment1", &experiment1(), 0.03, 20);
        assert!(comparison.analyzed.nodes_measured >= 2);
        assert!(
            comparison.analyzed.max_q_error <= comparison.unanalyzed.max_q_error,
            "analyzed {:?} must not be worse than unanalyzed {:?}",
            comparison.analyzed,
            comparison.unanalyzed
        );
        let doc = stats_bench_json("test", &[comparison]);
        let parsed = Json::parse(&doc.render()).unwrap();
        let overall = parsed.get("overall").unwrap();
        let analyzed = overall
            .get("analyzed_max_q_error")
            .unwrap()
            .as_f64()
            .unwrap();
        let unanalyzed = overall
            .get("unanalyzed_max_q_error")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(analyzed > 0.0 && unanalyzed > 0.0);
    }

    #[test]
    fn stats_gate_passes_improvements_and_fails_regressions() {
        fn doc(unanalyzed: f64, analyzed: f64) -> Json {
            Json::obj(vec![
                ("mode", Json::str("smoke")),
                ("experiments", Json::Arr(vec![])),
                (
                    "overall",
                    Json::obj(vec![
                        ("unanalyzed_max_q_error", Json::num(unanalyzed)),
                        ("analyzed_max_q_error", Json::num(analyzed)),
                    ]),
                ),
            ])
        }
        let config = StatsGateConfig::default();
        let baseline = doc(8.0, 1.2);
        assert!(check_stats_against_baseline(&doc(8.0, 1.4), &baseline, &config).is_ok());
        // Improvement invariant: analyzed must beat unanalyzed.
        let failures =
            check_stats_against_baseline(&doc(1.2, 1.2), &baseline, &config).unwrap_err();
        assert!(
            failures[0].contains("improvement invariant"),
            "{failures:?}"
        );
        // Regression beyond the factor fails.
        let failures =
            check_stats_against_baseline(&doc(8.0, 3.0), &baseline, &config).unwrap_err();
        assert!(failures[0].contains("regressed"), "{failures:?}");
        // Mode mismatch fails.
        let mut full = doc(8.0, 1.2);
        if let Json::Obj(map) = &mut full {
            map.insert("mode".into(), Json::str("full"));
        }
        let failures = check_stats_against_baseline(&full, &baseline, &config).unwrap_err();
        assert!(failures[0].contains("mode mismatch"), "{failures:?}");
        // A baseline experiment missing from the current run fails.
        let with_exp = |mut d: Json| {
            if let Json::Obj(map) = &mut d {
                map.insert(
                    "experiments".into(),
                    Json::Arr(vec![Json::obj(vec![("key", Json::str("experiment1"))])]),
                );
            }
            d
        };
        let failures =
            check_stats_against_baseline(&doc(8.0, 1.2), &with_exp(baseline), &config).unwrap_err();
        assert!(
            failures
                .iter()
                .any(|f| f.contains("missing from the current")),
            "{failures:?}"
        );
    }

    #[test]
    fn udf_runtime_bench_measures_dedup_wins() {
        let point = measure_repeated_args(60, 0.1, 200, 1);
        assert_eq!(point.distinct_args, 6);
        assert!(
            point.on.hit_rate() > 0.5,
            "6 distinct args over 60 probes must mostly hit the caches: {point:?}"
        );
        assert!(
            point.off.memo_hits + point.off.dedup_hits == 0,
            "the off arm must not touch the caches: {point:?}"
        );
        let doc = udf_bench_json("test", &[], &[point]);
        let parsed = Json::parse(&doc.render()).unwrap();
        let overall = parsed.get("overall").unwrap();
        assert!(overall.get("headline_speedup").unwrap().as_f64().unwrap() > 0.0);
        assert!(overall.get("headline_hit_rate").unwrap().as_f64().unwrap() > 0.5);
    }

    #[test]
    fn udf_gate_passes_clean_runs_and_fails_regressions() {
        fn doc(speedup: f64, hit_rate: f64) -> Json {
            Json::obj(vec![
                ("mode", Json::str("smoke")),
                ("experiments", Json::Arr(vec![])),
                (
                    "overall",
                    Json::obj(vec![
                        ("headline_speedup", Json::num(speedup)),
                        ("headline_hit_rate", Json::num(hit_rate)),
                    ]),
                ),
            ])
        }
        let config = UdfGateConfig::default();
        let baseline = doc(100.0, 0.99);
        assert!(check_udf_against_baseline(&doc(80.0, 0.99), &baseline, &config).is_ok());
        // Below the 5x improvement invariant: fail regardless of the baseline.
        let failures = check_udf_against_baseline(&doc(4.0, 0.99), &baseline, &config).unwrap_err();
        assert!(
            failures.iter().any(|f| f.contains("improvement invariant")),
            "{failures:?}"
        );
        // Hit-rate collapse fails even with a fine speedup.
        let failures = check_udf_against_baseline(&doc(80.0, 0.5), &baseline, &config).unwrap_err();
        assert!(
            failures.iter().any(|f| f.contains("hit rate")),
            "{failures:?}"
        );
        // Above the invariant but below baseline/2: regression.
        let failures =
            check_udf_against_baseline(&doc(30.0, 0.99), &baseline, &config).unwrap_err();
        assert!(
            failures.iter().any(|f| f.contains("regressed")),
            "{failures:?}"
        );
        // Mode mismatch is always a failure.
        let mut full = doc(80.0, 0.99);
        if let Json::Obj(entries) = &mut full {
            entries.insert("mode".to_string(), Json::str("full"));
        }
        let failures = check_udf_against_baseline(&full, &baseline, &config).unwrap_err();
        assert!(
            failures.iter().any(|f| f.contains("mode mismatch")),
            "{failures:?}"
        );
        // A baseline experiment missing from the current run fails.
        let with_exp = Json::obj(vec![
            ("mode", Json::str("smoke")),
            (
                "experiments",
                Json::Arr(vec![Json::obj(vec![("key", Json::str("experiment2"))])]),
            ),
            (
                "overall",
                Json::obj(vec![
                    ("headline_speedup", Json::num(100.0)),
                    ("headline_hit_rate", Json::num(0.99)),
                ]),
            ),
        ]);
        let failures =
            check_udf_against_baseline(&doc(80.0, 0.99), &with_exp, &config).unwrap_err();
        assert!(
            failures
                .iter()
                .any(|f| f.contains("missing from the current")),
            "{failures:?}"
        );
    }

    #[test]
    fn pass_timing_table_reports_every_pass() {
        let workload = experiment2();
        let db = setup(&workload, 60);
        let table = pass_timing_table(&db, &workload, 10);
        for pass in ["normalize", "algebraize-merge", "apply-removal", "cleanup"] {
            assert!(table.contains(pass), "missing pass {pass} in:\n{table}");
        }
        assert!(table.contains("rule fire counts:"), "{table}");
    }
}
