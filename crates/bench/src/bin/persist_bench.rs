//! Durability bench: WAL append overhead on a serving-style mixed workload (identical
//! seeded op sequence with and without a `data_dir`), checkpoint latency and snapshot
//! size, and cold-open restore time with a byte-equivalence check against the
//! pre-restart engine. Emits the machine-readable `BENCH_persist.json` that CI's
//! `persist-bench-smoke` job uploads and gates on.
//!
//! ```text
//! cargo run --release -p decorr-bench --bin persist_bench -- \
//!     [--smoke] [--out BENCH_persist.json] [--check crates/bench/BENCH_persist_baseline.json]
//! ```
//!
//! * `--smoke`  — reduced op count for CI;
//! * `--out`    — where to write the JSON document (default `BENCH_persist.json`);
//! * `--check`  — compare against a committed baseline and exit non-zero when the
//!   restored engine's rows diverge (machine-independent), the WAL overhead exceeds
//!   15% past a 25 ms noise floor, or checkpoint/reopen latency regressed past the
//!   lenient ceiling (factor 3.0 with a 25 ms floor, override the factor with
//!   `BENCH_GATE_FACTOR`).

use std::process::ExitCode;

use decorr_bench::json::Json;
use decorr_bench::{
    check_persist_against_baseline, measure_persist, persist_bench_json, PersistGateConfig,
};

struct Args {
    smoke: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: "BENCH_persist.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().ok_or("--out requires a path")?,
            "--check" => args.check = Some(it.next().ok_or("--check requires a path")?),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("persist_bench: {e}");
            return ExitCode::from(2);
        }
    };
    let (ops, customers) = if args.smoke { (400, 25) } else { (4_000, 100) };
    let mode = if args.smoke { "smoke" } else { "full" };
    println!("persist bench ({mode}): WAL overhead, checkpoint and cold-open restore\n");
    let m = measure_persist(ops, customers);
    println!(
        "mixed phase   plain {:>8.2} ms · durable {:>8.2} ms · WAL overhead {:>5.1}% \
         ({} records, {} bytes)",
        m.plain.as_secs_f64() * 1e3,
        m.durable.as_secs_f64() * 1e3,
        m.wal_overhead_pct(),
        m.wal_records_appended,
        m.wal_bytes_appended,
    );
    println!(
        "checkpoint    {:>8.2} ms ({} snapshot bytes)",
        m.checkpoint.as_secs_f64() * 1e3,
        m.snapshot_bytes,
    );
    println!(
        "cold reopen   {:>8.2} ms ({} WAL records replayed) · restore match: {}",
        m.reopen.as_secs_f64() * 1e3,
        m.wal_records_replayed,
        m.restore_match,
    );
    if !m.restore_match {
        eprintln!("persist_bench: restored engine diverged from the reference rows");
        return ExitCode::FAILURE;
    }

    let doc = persist_bench_json(mode, &m);
    if let Err(e) = std::fs::write(&args.out, doc.render()) {
        eprintln!("persist_bench: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!("\nwrote {}", args.out);

    if let Some(baseline_path) = &args.check {
        let baseline_text = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("persist_bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = match Json::parse(&baseline_text) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("persist_bench: malformed baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut config = PersistGateConfig::default();
        if let Ok(factor) = std::env::var("BENCH_GATE_FACTOR") {
            match factor.parse::<f64>() {
                Ok(f) if f > 0.0 => config.regression_factor = f,
                _ => {
                    eprintln!("persist_bench: invalid BENCH_GATE_FACTOR '{factor}'");
                    return ExitCode::from(2);
                }
            }
        }
        println!(
            "\ndurability gate vs {baseline_path} (factor {:.1}x, overhead cap {:.0}%):",
            config.regression_factor, config.max_overhead_pct
        );
        match check_persist_against_baseline(&doc, &baseline, &config) {
            Ok(report) => {
                for line in report {
                    println!("  {line}");
                }
                println!("  durability gate passed");
            }
            Err(failures) => {
                for line in failures {
                    eprintln!("  GATE FAILURE: {line}");
                }
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
