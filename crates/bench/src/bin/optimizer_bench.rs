//! Optimizer latency bench: cold vs warm (plan-cached) optimize time across the three
//! paper workloads, plus plan-cache behaviour under capacity pressure. Emits the
//! machine-readable `BENCH_optimizer.json` that CI's `bench-smoke` job uploads and
//! gates on.
//!
//! ```text
//! cargo run --release -p decorr-bench --bin optimizer_bench -- \
//!     [--smoke] [--out BENCH_optimizer.json] [--check bench/BENCH_optimizer_baseline.json]
//! ```
//!
//! * `--smoke`  — reduced data sizes and repetition counts for CI;
//! * `--out`    — where to write the JSON document (default `BENCH_optimizer.json`);
//! * `--check`  — compare against a committed baseline JSON and exit non-zero when the
//!   cold optimize time regressed more than the gate factor (default 2.0, override
//!   with `BENCH_GATE_FACTOR`) or the warm-cache speedup fell below 10x.

use std::process::ExitCode;

use decorr_bench::json::Json;
use decorr_bench::{
    check_against_baseline, measure_optimizer_latency, measure_validator_overhead,
    optimizer_bench_json, run_cache_pressure, GateConfig, OptimizerLatency, ValidatorOverhead,
};
use decorr_tpch::{experiment1, experiment2, experiment3};

struct Args {
    smoke: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: "BENCH_optimizer.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().ok_or("--out requires a path")?,
            "--check" => args.check = Some(it.next().ok_or("--check requires a path")?),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("optimizer_bench: {e}");
            return ExitCode::from(2);
        }
    };
    // (key, workload, customers, invocations): experiment2 is the acceptance-criterion
    // shape (Example 2 / service_level); 1 and 3 cover the straight-line and
    // cursor-loop pipelines.
    let (scale, invocations, runs) = if args.smoke {
        (200, 100, 5)
    } else {
        (2_000, 1_000, 20)
    };
    let mode = if args.smoke { "smoke" } else { "full" };
    println!("optimizer bench ({mode}): cold vs warm optimize latency\n");
    let latencies: Vec<OptimizerLatency> = [
        ("experiment1", experiment1()),
        ("experiment2", experiment2()),
        ("experiment3", experiment3()),
    ]
    .iter()
    .map(|(key, workload)| {
        // Experiment 3 iterates categories, which scale independently of customers.
        let n = if *key == "experiment3" {
            invocations.min(50)
        } else {
            invocations
        };
        let latency = measure_optimizer_latency(key, workload, scale, n, runs);
        println!(
            "{:<12} cold {:>9.3} ms · warm {:>9.3} ms · speedup {:>8.1}x (min of {} runs)",
            latency.key,
            latency.cold_optimize.as_secs_f64() * 1e3,
            latency.warm_optimize.as_secs_f64() * 1e3,
            latency.warm_speedup(),
            latency.runs,
        );
        latency
    })
    .collect();

    // Validator overhead: per-pass static validation must stay a rounding error next
    // to the pipeline it guards. Gated below at <10% of cold optimize latency, with a
    // noise floor — sub-quarter-millisecond deltas are timer jitter, not cost.
    const VALIDATOR_OVERHEAD_LIMIT: f64 = 0.10;
    const VALIDATOR_NOISE_FLOOR_MS: f64 = 0.25;
    println!();
    let overheads: Vec<ValidatorOverhead> = [
        ("experiment1", experiment1()),
        ("experiment2", experiment2()),
        ("experiment3", experiment3()),
    ]
    .iter()
    .map(|(key, workload)| {
        let n = if *key == "experiment3" {
            invocations.min(50)
        } else {
            invocations
        };
        // The overhead is a ~10-microsecond difference between two fractions of a
        // millisecond: minima over the latency section's repetition count still carry
        // tens of microseconds of jitter, so this measurement runs 4x as many
        // interleaved repetitions to converge both arms to their floors.
        let overhead = measure_validator_overhead(key, workload, scale, n, runs * 4);
        println!(
            "validator overhead {:<12} off {:>8.3} ms · on {:>8.3} ms · +{:.3} ms ({:.1}%)",
            overhead.key,
            overhead.cold_off.as_secs_f64() * 1e3,
            overhead.cold_on.as_secs_f64() * 1e3,
            overhead.overhead_ms(),
            overhead.overhead_fraction() * 100.0,
        );
        overhead
    })
    .collect();
    let mut validator_failures = vec![];
    for overhead in &overheads {
        if overhead.overhead_fraction() > VALIDATOR_OVERHEAD_LIMIT
            && overhead.overhead_ms() > VALIDATOR_NOISE_FLOOR_MS
        {
            validator_failures.push(format!(
                "{}: validation adds {:.3} ms ({:.1}%) to a {:.3} ms cold optimize \
                 (limit {:.0}%)",
                overhead.key,
                overhead.overhead_ms(),
                overhead.overhead_fraction() * 100.0,
                overhead.cold_off.as_secs_f64() * 1e3,
                VALIDATOR_OVERHEAD_LIMIT * 100.0,
            ));
        }
    }

    let (capacity, distinct, rounds) = if args.smoke { (4, 8, 2) } else { (8, 24, 3) };
    let pressure = run_cache_pressure(&experiment2(), scale.min(400), capacity, distinct, rounds);
    println!(
        "\ncapacity pressure: {} distinct shapes through {} slots × {} rounds → \
         hits={} misses={} evictions={} hot-hits={} (hit rate {:.0}%)",
        pressure.distinct_queries,
        pressure.capacity,
        pressure.rounds,
        pressure.stats.hits,
        pressure.stats.misses,
        pressure.stats.evictions,
        pressure.hot_hits,
        pressure.stats.hit_rate() * 100.0,
    );

    let doc = optimizer_bench_json(mode, &latencies, &pressure, &overheads);
    if let Err(e) = std::fs::write(&args.out, doc.render()) {
        eprintln!("optimizer_bench: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!("\nwrote {}", args.out);

    if let Some(baseline_path) = &args.check {
        let baseline_text = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("optimizer_bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = match Json::parse(&baseline_text) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("optimizer_bench: malformed baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut config = GateConfig::default();
        if let Ok(factor) = std::env::var("BENCH_GATE_FACTOR") {
            match factor.parse::<f64>() {
                Ok(f) if f > 0.0 => config.cold_regression_factor = f,
                _ => {
                    eprintln!("optimizer_bench: invalid BENCH_GATE_FACTOR '{factor}'");
                    return ExitCode::from(2);
                }
            }
        }
        println!(
            "\nperf gate vs {baseline_path} (factor {:.1}x, min warm speedup {:.0}x):",
            config.cold_regression_factor, config.min_warm_speedup
        );
        match check_against_baseline(&doc, &baseline, &config) {
            Ok(report) => {
                for line in report {
                    println!("  {line}");
                }
                println!("  perf gate passed");
            }
            Err(failures) => {
                for line in failures {
                    eprintln!("  GATE FAILURE: {line}");
                }
                return ExitCode::FAILURE;
            }
        }
    }
    if !validator_failures.is_empty() {
        for line in &validator_failures {
            eprintln!("VALIDATOR GATE FAILURE: {line}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "validator gate passed: overhead under {:.0}% on every workload",
        VALIDATOR_OVERHEAD_LIMIT * 100.0
    );
    ExitCode::SUCCESS
}
