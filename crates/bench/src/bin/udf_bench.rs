//! UDF invocation runtime bench: batching/dedup + memoization on vs off. Measures the
//! three paper workloads under both strategies, then the repeated-argument workload
//! (the iterative plan the runtime exists to rescue) across a distinct-argument-ratio
//! sweep. Emits the machine-readable `BENCH_udf.json` that CI's `udf-bench-smoke` job
//! uploads and gates on.
//!
//! ```text
//! cargo run --release -p decorr-bench --bin udf_bench -- \
//!     [--smoke] [--out BENCH_udf.json] [--check crates/bench/BENCH_udf_baseline.json]
//! ```
//!
//! * `--smoke`  — reduced data sizes for CI;
//! * `--out`    — where to write the JSON document (default `BENCH_udf.json`);
//! * `--check`  — compare against a committed baseline and exit non-zero when the
//!   improvement invariant fails (headline repeated-argument speedup below 5x, or its
//!   cache hit rate below 0.8 — the hit rate counts calls, not time, so that leg is
//!   machine-independent) or the headline speedup regressed more than the gate factor
//!   (default 2.0, override with `BENCH_GATE_FACTOR`).

use std::process::ExitCode;

use decorr_bench::json::Json;
use decorr_bench::{
    check_udf_against_baseline, measure_repeated_args, measure_udf_runtime, udf_bench_json,
    RepeatedArgPoint, UdfGateConfig, UdfRuntimeComparison,
};
use decorr_tpch::{experiment1, experiment2, experiment3};

/// Probe rows drawing from this fraction of distinct UDF arguments, from "every
/// argument distinct" down to one distinct argument per hundred calls.
const DISTINCT_RATIOS: [f64; 4] = [1.0, 0.5, 0.1, 0.01];

struct Args {
    smoke: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: "BENCH_udf.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().ok_or("--out requires a path")?,
            "--check" => args.check = Some(it.next().ok_or("--check requires a path")?),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("udf_bench: {e}");
            return ExitCode::from(2);
        }
    };
    let (customers, invocations, runs) = if args.smoke {
        (100, 100, 2)
    } else {
        (500, 500, 3)
    };
    let (probe_rows, item_rows) = if args.smoke {
        (400, 2000)
    } else {
        (1500, 8000)
    };
    let mode = if args.smoke { "smoke" } else { "full" };
    println!("udf bench ({mode}): batching + memoization on vs off\n");

    let comparisons: Vec<UdfRuntimeComparison> = [
        ("experiment1", experiment1()),
        ("experiment2", experiment2()),
        ("experiment3", experiment3()),
    ]
    .iter()
    .map(|(key, workload)| {
        // Experiment 3 iterates categories, which scale independently of customers.
        let n = if *key == "experiment3" {
            (invocations / 10).max(4)
        } else {
            invocations
        };
        let comparison = measure_udf_runtime(key, workload, customers, n, runs);
        println!(
            "{:<12} iterative {:>8.2} ms → {:>8.2} ms ({:>5.1}x) · decorrelated \
             {:>8.2} ms → {:>8.2} ms ({:>5.1}x)",
            comparison.key,
            comparison.iterative_off.duration.as_secs_f64() * 1e3,
            comparison.iterative_on.duration.as_secs_f64() * 1e3,
            comparison.iterative_speedup(),
            comparison.decorrelated_off.duration.as_secs_f64() * 1e3,
            comparison.decorrelated_on.duration.as_secs_f64() * 1e3,
            comparison.decorrelated_speedup(),
        );
        comparison
    })
    .collect();

    println!(
        "\nrepeated-argument sweep ({probe_rows} probes over {item_rows} items, \
         iterative plan):"
    );
    let sweep: Vec<RepeatedArgPoint> = DISTINCT_RATIOS
        .iter()
        .map(|&ratio| {
            let point = measure_repeated_args(probe_rows, ratio, item_rows, runs);
            println!(
                "  ratio {:>5.2} ({:>5} distinct): {:>8.2} ms → {:>8.2} ms \
                 ({:>5.1}x, hit rate {:.3}, {} batched)",
                point.distinct_ratio,
                point.distinct_args,
                point.off.duration.as_secs_f64() * 1e3,
                point.on.duration.as_secs_f64() * 1e3,
                point.speedup(),
                point.on.hit_rate(),
                point.on.batch_evals,
            );
            point
        })
        .collect();

    let doc = udf_bench_json(mode, &comparisons, &sweep);
    if let Err(e) = std::fs::write(&args.out, doc.render()) {
        eprintln!("udf_bench: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!("\nwrote {}", args.out);

    if let Some(baseline_path) = &args.check {
        let baseline_text = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("udf_bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = match Json::parse(&baseline_text) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("udf_bench: malformed baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut config = UdfGateConfig::default();
        if let Ok(factor) = std::env::var("BENCH_GATE_FACTOR") {
            match factor.parse::<f64>() {
                Ok(f) if f > 0.0 => config.regression_factor = f,
                _ => {
                    eprintln!("udf_bench: invalid BENCH_GATE_FACTOR '{factor}'");
                    return ExitCode::from(2);
                }
            }
        }
        println!(
            "\nudf runtime gate vs {baseline_path} (factor {:.1}x):",
            config.regression_factor
        );
        match check_udf_against_baseline(&doc, &baseline, &config) {
            Ok(report) => {
                for line in report {
                    println!("  {line}");
                }
                println!("  udf runtime gate passed");
            }
            Err(failures) => {
                for line in failures {
                    eprintln!("  GATE FAILURE: {line}");
                }
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
