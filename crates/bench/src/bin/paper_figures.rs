//! Regenerates the series behind the paper's evaluation figures (Figures 10, 11, 12).
//!
//! ```text
//! cargo run --release -p decorr-bench --bin paper_figures            # all experiments
//! cargo run --release -p decorr-bench --bin paper_figures -- --experiment 2
//! cargo run --release -p decorr-bench --bin paper_figures -- --scale 5000
//! ```
//!
//! For every experiment the harness prints the same two series the paper plots: elapsed
//! time of the original (iterative UDF invocation) query and of the rewritten
//! (decorrelated) query as the number of UDF invocations grows. Absolute numbers differ
//! from the paper (this engine is an in-memory simulator, not a commercial DBMS on a
//! 10 GB TPC-H database); the *shape* — who wins and by how much as invocations grow —
//! is the reproduction target.

use decorr_bench::{format_sweep, run_sweep};
use decorr_tpch::{experiment1, experiment2, experiment3};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let experiment = arg_value(&args, "--experiment");
    let scale: usize = arg_value(&args, "--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);

    let run_1 = experiment.as_deref().map(|e| e == "1").unwrap_or(true);
    let run_2 = experiment.as_deref().map(|e| e == "2").unwrap_or(true);
    let run_3 = experiment.as_deref().map(|e| e == "3").unwrap_or(true);

    if run_1 {
        // Figure 10: invocations = orders touched (10 … all orders).
        let workload = experiment1();
        let max_orders = scale * 10;
        let sweep: Vec<usize> = [10, 50, 100, 500, 1_000, 5_000, 10_000, 20_000]
            .into_iter()
            .filter(|&n| n <= max_orders)
            .collect();
        let points = run_sweep(&workload, scale, &sweep);
        println!("{}", format_sweep(workload.name, &points));
    }
    if run_2 {
        // Figure 11: invocations = customers touched.
        let workload = experiment2();
        let sweep: Vec<usize> = [10, 50, 100, 500, 1_000, 2_000, 5_000]
            .into_iter()
            .filter(|&n| n <= scale)
            .collect();
        let points = run_sweep(&workload, scale, &sweep);
        println!("{}", format_sweep(workload.name, &points));
    }
    if run_3 {
        // Figure 12: invocations = categories touched (5 … 200 by default).
        let workload = experiment3();
        let sweep = [5usize, 10, 50, 100, 200];
        let points = run_sweep(&workload, scale, &sweep);
        println!("{}", format_sweep(workload.name, &points));
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}
