//! Statistics-subsystem accuracy bench: per-node cardinality q-errors (estimated vs
//! executed actuals) for the three paper workloads, analyzed vs unanalyzed. Emits the
//! machine-readable `BENCH_stats.json` that CI's `stats-bench-smoke` job uploads and
//! gates on.
//!
//! ```text
//! cargo run --release -p decorr-bench --bin stats_bench -- \
//!     [--smoke] [--out BENCH_stats.json] [--check crates/bench/BENCH_stats_baseline.json]
//! ```
//!
//! * `--smoke`  — reduced data sizes for CI;
//! * `--out`    — where to write the JSON document (default `BENCH_stats.json`);
//! * `--check`  — compare against a committed baseline and exit non-zero when the
//!   analyzed max q-error regressed more than the gate factor (default 2.0, override
//!   with `BENCH_GATE_FACTOR`) or the analyzed accuracy stops beating the unanalyzed
//!   one (the improvement invariant). Unlike the timing benches, q-errors are
//!   deterministic, so the gate is machine-independent.

use std::process::ExitCode;

use decorr_bench::json::Json;
use decorr_bench::{
    check_stats_against_baseline, measure_accuracy_comparison, stats_bench_json,
    AccuracyComparison, StatsGateConfig,
};
use decorr_tpch::{experiment1, experiment2, experiment3};

struct Args {
    smoke: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: "BENCH_stats.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().ok_or("--out requires a path")?,
            "--check" => args.check = Some(it.next().ok_or("--check requires a path")?),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("stats_bench: {e}");
            return ExitCode::from(2);
        }
    };
    let (scale, invocations) = if args.smoke { (0.1, 100) } else { (0.5, 500) };
    let mode = if args.smoke { "smoke" } else { "full" };
    println!("stats bench ({mode}): cost-model q-errors, analyzed vs unanalyzed\n");
    let comparisons: Vec<AccuracyComparison> = [
        ("experiment1", experiment1()),
        ("experiment2", experiment2()),
        ("experiment3", experiment3()),
    ]
    .iter()
    .map(|(key, workload)| {
        // Experiment 3 iterates categories, which scale independently of customers.
        let n = if *key == "experiment3" {
            (invocations / 10).max(4)
        } else {
            invocations
        };
        let comparison = measure_accuracy_comparison(key, workload, scale, n);
        println!(
            "{:<12} unanalyzed: max q {:>8.2} median {:>6.2} · analyzed: max q {:>6.2} \
             median {:>6.2} ({} nodes)",
            comparison.key,
            comparison.unanalyzed.max_q_error,
            comparison.unanalyzed.median_q_error,
            comparison.analyzed.max_q_error,
            comparison.analyzed.median_q_error,
            comparison.analyzed.nodes_measured,
        );
        comparison
    })
    .collect();

    let doc = stats_bench_json(mode, &comparisons);
    if let Err(e) = std::fs::write(&args.out, doc.render()) {
        eprintln!("stats_bench: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!("\nwrote {}", args.out);

    if let Some(baseline_path) = &args.check {
        let baseline_text = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("stats_bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = match Json::parse(&baseline_text) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("stats_bench: malformed baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut config = StatsGateConfig::default();
        if let Ok(factor) = std::env::var("BENCH_GATE_FACTOR") {
            match factor.parse::<f64>() {
                Ok(f) if f > 0.0 => config.regression_factor = f,
                _ => {
                    eprintln!("stats_bench: invalid BENCH_GATE_FACTOR '{factor}'");
                    return ExitCode::from(2);
                }
            }
        }
        println!(
            "\naccuracy gate vs {baseline_path} (factor {:.1}x):",
            config.regression_factor
        );
        match check_stats_against_baseline(&doc, &baseline, &config) {
            Ok(report) => {
                for line in report {
                    println!("  {line}");
                }
                println!("  accuracy gate passed");
            }
            Err(failures) => {
                for line in failures {
                    eprintln!("  GATE FAILURE: {line}");
                }
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
