//! Concurrent serving bench: N client threads, each holding one [`Session`] on a
//! single shared [`Engine`], run a seeded mix of shared-shape UDF queries, private
//! inserts/queries and `ANALYZE`. Measures per-query p50/p99 latency, throughput and
//! the warm cross-session plan-cache hit rate, and verifies every query's rows
//! against an independently tracked expectation. Emits the machine-readable
//! `BENCH_serving.json` that CI's `serving-bench-smoke` job uploads and gates on.
//!
//! ```text
//! cargo run --release -p decorr-bench --bin serving_bench -- \
//!     [--smoke] [--out BENCH_serving.json] [--check crates/bench/BENCH_serving_baseline.json]
//! ```
//!
//! * `--smoke`  — reduced client count / op count for CI;
//! * `--out`    — where to write the JSON document (default `BENCH_serving.json`);
//! * `--check`  — compare against a committed baseline and exit non-zero when a
//!   machine-independent invariant fails (result divergence in any arm, or the
//!   most-concurrent arm's warm plan-cache hit rate below 0.8) or an arm's p50
//!   latency regressed past the lenient ceiling (factor 3.0 with a 25 ms noise
//!   floor, override the factor with `BENCH_GATE_FACTOR`).
//!
//! [`Session`]: decorr_engine::Session
//! [`Engine`]: decorr_engine::Engine

use std::process::ExitCode;

use decorr_bench::json::Json;
use decorr_bench::{
    check_serving_against_baseline, measure_serving, serving_bench_json, ServingArm,
    ServingGateConfig,
};

struct Args {
    smoke: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: "BENCH_serving.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().ok_or("--out requires a path")?,
            "--check" => args.check = Some(it.next().ok_or("--check requires a path")?),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("serving_bench: {e}");
            return ExitCode::from(2);
        }
    };
    let (client_counts, ops_per_client, customers): (&[usize], usize, usize) = if args.smoke {
        (&[1, 4], 40, 30)
    } else {
        (&[1, 4, 8], 120, 100)
    };
    let mode = if args.smoke { "smoke" } else { "full" };
    println!("serving bench ({mode}): shared Engine, concurrent Sessions\n");

    let arms: Vec<ServingArm> = client_counts
        .iter()
        .map(|&clients| {
            let arm = measure_serving(clients, ops_per_client, customers);
            println!(
                "{:<10} {:>4} queries in {:>8.2} ms · p50 {:>7.3} ms · p99 {:>7.3} ms · \
                 {:>8.0} q/s · hit rate {:.3} · results {}",
                arm.key,
                arm.queries,
                arm.duration.as_secs_f64() * 1e3,
                arm.p50.as_secs_f64() * 1e3,
                arm.p99.as_secs_f64() * 1e3,
                arm.throughput_qps(),
                arm.plan_cache_hit_rate,
                if arm.results_match {
                    "match"
                } else {
                    "DIVERGED"
                },
            );
            arm
        })
        .collect();

    let doc = serving_bench_json(mode, &arms);
    if let Err(e) = std::fs::write(&args.out, doc.render()) {
        eprintln!("serving_bench: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!("\nwrote {}", args.out);

    if let Some(baseline_path) = &args.check {
        let baseline_text = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("serving_bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = match Json::parse(&baseline_text) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("serving_bench: malformed baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut config = ServingGateConfig::default();
        if let Ok(factor) = std::env::var("BENCH_GATE_FACTOR") {
            match factor.parse::<f64>() {
                Ok(f) if f > 0.0 => config.regression_factor = f,
                _ => {
                    eprintln!("serving_bench: invalid BENCH_GATE_FACTOR '{factor}'");
                    return ExitCode::from(2);
                }
            }
        }
        println!(
            "\nserving gate vs {baseline_path} (factor {:.1}x):",
            config.regression_factor
        );
        match check_serving_against_baseline(&doc, &baseline, &config) {
            Ok(report) => {
                for line in report {
                    println!("  {line}");
                }
                println!("  serving gate passed");
            }
            Err(failures) => {
                for line in failures {
                    eprintln!("  GATE FAILURE: {line}");
                }
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
