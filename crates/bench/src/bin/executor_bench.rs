//! Executor latency bench: serial vs morsel-parallel end-to-end latency across the
//! three paper workloads at two TPC-H scale factors, plus a worker-count sweep. Emits
//! the machine-readable `BENCH_executor.json` that CI's `executor-bench-smoke` job
//! uploads and gates on.
//!
//! ```text
//! cargo run --release -p decorr-bench --bin executor_bench -- \
//!     [--smoke] [--threads N] [--out BENCH_executor.json] \
//!     [--check crates/bench/BENCH_executor_baseline.json]
//! ```
//!
//! * `--smoke`   — reduced data sizes and repetition counts for CI;
//! * `--threads` — worker-pool size of the parallel arm (default 4, the CI runner's
//!   core count);
//! * `--out`     — where to write the JSON document (default `BENCH_executor.json`);
//! * `--check`   — compare against a committed baseline JSON and exit non-zero when a
//!   serial end-to-end time regressed more than the gate factor (default 2.0, override
//!   with `BENCH_GATE_FACTOR`) or, on hosts with ≥ 4 cores, when no workload reaches a
//!   1.5x parallel speedup at the bench's thread count or the 4-shard scan misses a
//!   1.3x parallel speedup.

use std::process::ExitCode;

use decorr_bench::json::Json;
use decorr_bench::{
    check_executor_against_baseline, executor_bench_json, executor_thread_sweep,
    measure_executor_latency, measure_pipelining, measure_pool_reuse, measure_sharding,
    ExecGateConfig, ExecutorLatency, ShardingLatency,
};
use decorr_tpch::{experiment1, experiment2, experiment3};

struct Args {
    smoke: bool,
    threads: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        threads: 4,
        out: "BENCH_executor.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads requires a count")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?;
            }
            "--out" => args.out = it.next().ok_or("--out requires a path")?,
            "--check" => args.check = Some(it.next().ok_or("--check requires a path")?),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("executor_bench: {e}");
            return ExitCode::from(2);
        }
    };
    // Two scale factors (fractions of the default TPC-H-flavoured sizes) per mode;
    // the experiment shapes sweep invocation counts exactly like the paper.
    let (scales, invocations, runs) = if args.smoke {
        ([0.1, 0.3], 100, 3)
    } else {
        ([1.0, 3.0], 1_000, 5)
    };
    let mode = if args.smoke { "smoke" } else { "full" };
    let cores = host_cores();
    println!(
        "executor bench ({mode}): serial vs parallel end-to-end latency \
         ({} host cores, {} worker threads)\n",
        cores, args.threads
    );
    let mut latencies: Vec<ExecutorLatency> = vec![];
    for (sf_index, &scale) in scales.iter().enumerate() {
        for (key, workload) in [
            ("experiment1", experiment1()),
            ("experiment2", experiment2()),
            ("experiment3", experiment3()),
        ] {
            // Experiment 3 iterates categories, which scale independently of customers.
            let n = if key == "experiment3" {
                invocations.min(50)
            } else {
                invocations
            };
            let full_key = format!("{key}_sf{}", sf_index + 1);
            let latency =
                measure_executor_latency(&full_key, &workload, scale, n, args.threads, runs);
            println!(
                "{:<18} iter {:>9.2} → {:>9.2} ms ({:>5.2}x) · decorr {:>9.2} → {:>9.2} ms \
                 ({:>5.2}x) (min of {} runs)",
                latency.key,
                latency.serial_iterative.as_secs_f64() * 1e3,
                latency.parallel_iterative.as_secs_f64() * 1e3,
                latency.iterative_speedup(),
                latency.serial_decorrelated.as_secs_f64() * 1e3,
                latency.parallel_decorrelated.as_secs_f64() * 1e3,
                latency.decorrelated_speedup(),
                latency.runs,
            );
            latencies.push(latency);
        }
    }

    let sweep_threads = [1usize, 2, 4, 8];
    let sweep = executor_thread_sweep(&experiment2(), scales[1], invocations, &sweep_threads, runs);
    println!(
        "\nthread sweep (experiment2, decorrelated, scale {}):",
        scales[1]
    );
    for (threads, latency) in &sweep {
        println!(
            "  {threads:>2} threads: {:>9.2} ms",
            latency.as_secs_f64() * 1e3
        );
    }

    // Persistent-pool payoff: thread spawns per query must drop to zero once the pool
    // is warm (the scoped-thread design paid parallel_operators × threads per query).
    let pool_reuse = measure_pool_reuse(&experiment2(), scales[0], invocations, args.threads, 5);
    println!(
        "\npool reuse (experiment2, {} queries at {} threads): warm-up spawned {} threads, \
         warm queries spawned {}/query (scoped design: {}/query across {} parallel operators)",
        pool_reuse.queries,
        pool_reuse.threads,
        pool_reuse.warmup_spawns,
        pool_reuse.warm_spawns_per_query,
        pool_reuse.scoped_spawns_per_query,
        pool_reuse.parallel_operators_per_query,
    );

    // Pipelined vs materialized execution of the fusion-heavy iterative shape.
    let pipelining = measure_pipelining(
        "experiment2",
        &experiment2(),
        scales[0],
        invocations,
        args.threads,
        runs,
    );
    println!(
        "pipelining (experiment2, iterative): fused {:.2} ms vs materialized {:.2} ms \
         ({:.2}x, {} operators fused)",
        pipelining.pipelined.as_secs_f64() * 1e3,
        pipelining.materialized.as_secs_f64() * 1e3,
        pipelining.speedup(),
        pipelining.pipelined_operators,
    );

    // Sharded storage: scan/join throughput across shard fanouts plus the pruning
    // hit rate of a 1%-selective range predicate.
    let shard_rows = if args.smoke { 40_000 } else { 200_000 };
    let sharding: Vec<ShardingLatency> = [1usize, 4, 8]
        .iter()
        .map(|&s| measure_sharding(s, shard_rows, args.threads, runs))
        .collect();
    println!("\nsharding ({shard_rows} rows, {} threads):", args.threads);
    for s in &sharding {
        println!(
            "  {:>2} shard(s): scan {:>8.2} → {:>8.2} ms ({:>5.2}x) · join {:>8.2} → {:>8.2} ms \
             ({:>5.2}x) · pruned {}/{} shards on the selective predicate",
            s.shard_count,
            s.scan_serial.as_secs_f64() * 1e3,
            s.scan_parallel.as_secs_f64() * 1e3,
            s.scan_speedup(),
            s.join_serial.as_secs_f64() * 1e3,
            s.join_parallel.as_secs_f64() * 1e3,
            s.join_speedup(),
            s.pruned_shards,
            s.shard_count,
        );
    }

    let doc = executor_bench_json(
        mode,
        cores,
        &latencies,
        &sweep,
        &pool_reuse,
        &pipelining,
        &sharding,
    );
    if let Err(e) = std::fs::write(&args.out, doc.render()) {
        eprintln!("executor_bench: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!("\nwrote {}", args.out);

    if let Some(baseline_path) = &args.check {
        let baseline_text = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("executor_bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = match Json::parse(&baseline_text) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("executor_bench: malformed baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut config = ExecGateConfig::default();
        if let Ok(factor) = std::env::var("BENCH_GATE_FACTOR") {
            match factor.parse::<f64>() {
                Ok(f) if f > 0.0 => config.regression_factor = f,
                _ => {
                    eprintln!("executor_bench: invalid BENCH_GATE_FACTOR '{factor}'");
                    return ExitCode::from(2);
                }
            }
        }
        println!(
            "\nperf gate vs {baseline_path} (factor {:.1}x, min parallel speedup {:.1}x \
             on ≥{}-core hosts):",
            config.regression_factor,
            config.min_parallel_speedup,
            config.min_cores_for_speedup_gate
        );
        match check_executor_against_baseline(&doc, &baseline, &config) {
            Ok(report) => {
                for line in report {
                    println!("  {line}");
                }
                println!("  perf gate passed");
            }
            Err(failures) => {
                for line in failures {
                    eprintln!("  GATE FAILURE: {line}");
                }
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
