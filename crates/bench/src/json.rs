//! A minimal JSON value: build, render and parse.
//!
//! The bench harness emits machine-readable `BENCH_optimizer.json` files and the CI
//! perf gate reads a committed baseline back. The workspace builds hermetically (no
//! serde), so this module implements the small JSON subset the harness needs: objects,
//! arrays, strings, finite numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys are sorted (`BTreeMap`) so rendered files are stable
/// across runs and diffs stay readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(entries: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Field of an object, if this is an object and the field exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner_pad = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                // JSON has no NaN/Infinity literals: a non-finite measurement (e.g. a
                // speedup with a zero denominator) renders as `null` so the emitted
                // document always re-parses. Integers render without a fraction;
                // everything else with enough precision to round-trip the measurements.
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n:.6}");
                }
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&inner_pad);
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&inner_pad);
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses the JSON subset this module emits. Returns a descriptive error with the
    /// byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

/// Renders a quoted, escaped JSON string (shared by values and object keys).
fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = vec![];
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| format!("invalid number at byte {start}"))?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 scalar starting here.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let c = rest.chars().next().expect("non-empty rest");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let value = Json::obj(vec![
            ("name", Json::str("experiment2")),
            ("cold_ms", Json::num(1.5)),
            ("hits", Json::num(12.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "points",
                Json::Arr(vec![Json::num(1.0), Json::num(2.25), Json::str("x\"y")]),
            ),
        ]);
        let text = value.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, value);
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("experiment2"));
        assert_eq!(parsed.get("cold_ms").unwrap().as_f64(), Some(1.5));
        assert_eq!(parsed.get("points").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn object_keys_are_escaped_like_values() {
        let value = Json::obj(vec![("a\"b\\c\n", Json::num(1.0))]);
        let text = value.render();
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(12.0).render(), "12\n");
        assert!(Json::num(1.5).render().starts_with("1.5"));
    }

    #[test]
    fn non_finite_numbers_emit_null_and_round_trip() {
        // `write!("{n}")` would emit `NaN`/`inf`, which the parser (rightly) rejects;
        // the emitter must fall back to `null` for every non-finite value.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = Json::obj(vec![
                ("speedup", Json::num(bad)),
                ("ok", Json::num(1.5)),
                ("nested", Json::Arr(vec![Json::num(bad), Json::num(2.0)])),
            ]);
            let text = doc.render();
            let parsed = Json::parse(&text)
                .unwrap_or_else(|e| panic!("emitted JSON must re-parse ({bad}): {e}\n{text}"));
            assert_eq!(parsed.get("speedup"), Some(&Json::Null), "{text}");
            assert_eq!(parsed.get("ok").unwrap().as_f64(), Some(1.5));
            assert_eq!(
                parsed.get("nested").unwrap().as_arr().unwrap()[0],
                Json::Null
            );
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }
}
