//! Experiment 1 (Figure 10): discount(totalprice, custkey) over orders — original
//! (iterative) vs rewritten (decorrelated), varying the number of UDF invocations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decorr_bench::setup;
use decorr_engine::QueryOptions;
use decorr_tpch::experiment1;

fn bench(c: &mut Criterion) {
    let workload = experiment1();
    let db = setup(&workload, 1_000);
    let mut group = c.benchmark_group("experiment1_figure10");
    group.sample_size(10);
    for invocations in [100usize, 1_000, 10_000] {
        let sql = (workload.query)(invocations);
        group.bench_with_input(BenchmarkId::new("original", invocations), &sql, |b, sql| {
            b.iter(|| db.query_with(sql, &QueryOptions::iterative()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rewritten", invocations), &sql, |b, sql| {
            b.iter(|| db.query_with(sql, &QueryOptions::decorrelated()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
