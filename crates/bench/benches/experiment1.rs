//! Experiment 1 (Figure 10): discount(totalprice, custkey) over orders — original
//! (iterative) vs rewritten (decorrelated), varying the number of UDF invocations.
//!
//! Run with `cargo bench -p decorr-bench --bench experiment1`.

use decorr_bench::{format_sweep, pass_timing_table, run_sweep_on, setup};
use decorr_tpch::experiment1;

fn main() {
    let workload = experiment1();
    let db = setup(&workload, 1_000);
    let points = run_sweep_on(&db, &workload, &[100, 1_000, 10_000]);
    println!("{}", format_sweep(workload.name, &points));
    println!("{}", pass_timing_table(&db, &workload, 1_000));
}
