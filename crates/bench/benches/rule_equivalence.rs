//! Micro-benchmark of the rewrite pipeline itself (Tables I & II): how long the
//! algebraize → merge → rule-application pipeline takes for each experiment's query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decorr_bench::setup;
use decorr_exec::CatalogProvider;
use decorr_parser::parse_and_plan;
use decorr_rewrite::{rewrite_query, RewriteOptions};
use decorr_tpch::{experiment1, experiment2, experiment3};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite_pipeline");
    group.sample_size(20);
    for workload in [experiment1(), experiment2(), experiment3()] {
        let db = setup(&workload, 100);
        let plan = parse_and_plan(&(workload.query)(100)).unwrap();
        group.bench_with_input(BenchmarkId::new("rewrite", workload.name), &plan, |b, plan| {
            b.iter(|| {
                let provider = CatalogProvider::new(db.catalog(), db.registry());
                let outcome = rewrite_query(
                    plan,
                    db.registry(),
                    &provider,
                    &RewriteOptions::default(),
                )
                .unwrap();
                assert!(outcome.decorrelated);
                outcome
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
