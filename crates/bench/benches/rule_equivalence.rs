//! Micro-benchmark of the rewrite pipeline itself (Tables I & II): how long the
//! algebraize → merge → rule-application pipeline takes for each experiment's query,
//! with the per-pass breakdown reported by the PassManager trace.
//!
//! Run with `cargo bench -p decorr-bench --bench rule_equivalence`.

use std::time::Instant;

use decorr_bench::{pass_timing_table, setup};
use decorr_exec::CatalogProvider;
use decorr_parser::parse_and_plan;
use decorr_tpch::{experiment1, experiment2, experiment3};

fn main() {
    const REPS: usize = 20;
    for workload in [experiment1(), experiment2(), experiment3()] {
        let db = setup(&workload, 100);
        let plan = parse_and_plan(&(workload.query)(100)).unwrap();
        let catalog = db.catalog();
        let registry = db.registry();
        let provider = CatalogProvider::new(&catalog, &registry);
        let manager = decorr_optimizer::PassManager::decorrelation_pipeline();
        let start = Instant::now();
        for _ in 0..REPS {
            let outcome = manager.optimize(&plan, &registry, &provider, None).unwrap();
            assert!(outcome.decorrelated);
        }
        let per_rewrite = start.elapsed() / REPS as u32;
        println!(
            "{:<40} full rewrite pipeline: {:>10.3} ms/op",
            workload.name,
            per_rewrite.as_secs_f64() * 1e3
        );
        println!("{}", pass_timing_table(&db, &workload, 100));
    }
}
