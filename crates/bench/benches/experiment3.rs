//! Experiment 3 (Figure 12): the cursor-loop UDF over categories — original (iterative)
//! vs rewritten (decorrelated via the auxiliary aggregate), varying invocation counts.
//!
//! Run with `cargo bench -p decorr-bench --bench experiment3`.

use decorr_bench::{format_sweep, pass_timing_table, run_sweep_on, setup};
use decorr_tpch::experiment3;

fn main() {
    let workload = experiment3();
    let db = setup(&workload, 2_000);
    let points = run_sweep_on(&db, &workload, &[5, 10, 50, 100, 200]);
    println!("{}", format_sweep(workload.name, &points));
    println!("{}", pass_timing_table(&db, &workload, 100));
}
