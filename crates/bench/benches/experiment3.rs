//! Experiment 3 (Figure 12): category_part_count (cursor loop → auxiliary aggregate)
//! over categories — original vs rewritten, varying the number of categories.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decorr_bench::setup;
use decorr_engine::QueryOptions;
use decorr_tpch::experiment3;

fn bench(c: &mut Criterion) {
    let workload = experiment3();
    let db = setup(&workload, 1_000);
    let mut group = c.benchmark_group("experiment3_figure12");
    group.sample_size(10);
    for invocations in [5usize, 50, 200] {
        let sql = (workload.query)(invocations);
        group.bench_with_input(BenchmarkId::new("original", invocations), &sql, |b, sql| {
            b.iter(|| db.query_with(sql, &QueryOptions::iterative()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rewritten", invocations), &sql, |b, sql| {
            b.iter(|| db.query_with(sql, &QueryOptions::decorrelated()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
