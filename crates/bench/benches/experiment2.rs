//! Experiment 2 (Figure 11): service_level(custkey) over customers — original
//! (iterative) vs rewritten (decorrelated), varying the number of UDF invocations.
//!
//! Run with `cargo bench -p decorr-bench --bench experiment2`.

use decorr_bench::{format_sweep, pass_timing_table, run_sweep_on, setup};
use decorr_tpch::experiment2;

fn main() {
    let workload = experiment2();
    let db = setup(&workload, 2_000);
    let points = run_sweep_on(&db, &workload, &[100, 500, 1_000, 2_000]);
    println!("{}", format_sweep(workload.name, &points));
    println!("{}", pass_timing_table(&db, &workload, 1_000));
}
