//! Experiment 2 (Figure 11): service_level(custkey) over customer — original vs
//! rewritten, varying the number of customers (UDF invocations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decorr_bench::setup;
use decorr_engine::QueryOptions;
use decorr_tpch::experiment2;

fn bench(c: &mut Criterion) {
    let workload = experiment2();
    let db = setup(&workload, 2_000);
    let mut group = c.benchmark_group("experiment2_figure11");
    group.sample_size(10);
    for invocations in [10usize, 100, 1_000, 2_000] {
        let sql = (workload.query)(invocations);
        group.bench_with_input(BenchmarkId::new("original", invocations), &sql, |b, sql| {
            b.iter(|| db.query_with(sql, &QueryOptions::iterative()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rewritten", invocations), &sql, |b, sql| {
            b.iter(|| db.query_with(sql, &QueryOptions::decorrelated()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
