//! Quickstart: create tables, register an imperative UDF, and watch the engine
//! decorrelate it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use udf_decorrelation::prelude::*;

fn main() -> Result<()> {
    let mut db = Database::new();

    // A tiny schema with the paper's flavour: customers and their orders.
    db.execute(
        "create table customer(custkey int not null, name varchar(25)); \
         create table orders(orderkey int not null, custkey int, totalprice float); \
         create index on orders(custkey);",
    )?;
    db.execute(
        "insert into customer values (1, 'Alice'), (2, 'Bob'), (3, 'Carol'); \
         insert into orders values \
            (101, 1, 1200000.0), (102, 1, 150000.0), \
            (103, 2, 600000.0), \
            (104, 3, 90000.0), (105, 3, 20000.0)",
    )?;

    // Example 1 of the paper: a UDF with a scalar query, assignments and branching.
    db.register_function(
        "create function service_level(int ckey) returns varchar(10) as \
         begin \
           float totalbusiness; string level; \
           select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
           if (totalbusiness > 1000000) level = 'Platinum'; \
           else if (totalbusiness > 500000) level = 'Gold'; \
           else level = 'Regular'; \
           return level; \
         end",
    )?;

    let sql = "select custkey, service_level(custkey) as level from customer";

    // EXPLAIN shows the original (iterative) plan, the decorrelated plan, the rules that
    // fired, and the cost-based decision.
    println!("{}", db.explain(sql)?);

    // Execute with the default (cost-based) strategy.
    let result = db.query(sql)?;
    println!("results ({} rows):", result.rows.len());
    for row in &result.rows {
        println!("  {}", row.display_with(&result.schema));
    }
    println!(
        "\nexecuted {} plan; UDF invocations performed: {}",
        if result.used_decorrelated_plan {
            "the decorrelated"
        } else {
            "the iterative"
        },
        result.exec_stats.udf_invocations
    );
    Ok(())
}
