//! The paper's standalone query-rewrite tool (Figure 9), as a program: feed it a schema,
//! UDF definitions and a query; it prints the decorrelated SQL plus any auxiliary
//! aggregate definitions (Example 6) without executing anything.
//!
//! ```text
//! cargo run --example rewrite_tool
//! ```

use udf_decorrelation::prelude::*;
use udf_decorrelation::tpch::{experiment1, experiment2, experiment3, generate, TpchConfig};

fn main() -> Result<()> {
    // The schema comes from the generated catalog; the data itself is irrelevant for
    // rewriting, so the tiny configuration is enough.
    let mut db = generate(&TpchConfig::tiny())?;

    for workload in [experiment1(), experiment2(), experiment3()] {
        workload.install(&mut db)?;
        let sql = (workload.query)(1_000);
        println!("==================================================================");
        println!("-- {}", workload.name);
        println!("-- original query:\n--   {sql}\n");
        let report = db.rewrite_sql(&sql)?;
        if report.decorrelated {
            println!(
                "-- rewritten (decorrelated) query:\n{}\n",
                report.rewritten_sql
            );
            if !report.auxiliary_functions.is_empty() {
                println!("-- auxiliary aggregate definitions:");
                for aux in &report.auxiliary_functions {
                    println!("{aux}\n");
                }
            }
            println!("-- rules applied: {}\n", report.applied_rules.join(", "));
        } else {
            println!("-- not decorrelated: {}\n", report.notes.join("; "));
        }
    }
    Ok(())
}
