//! Serving layer: one shared `Engine`, many concurrent `Session`s.
//!
//! Four client threads race the same UDF-bearing query while a writer session
//! interleaves inserts and `ANALYZE`. Every query pins an immutable catalog
//! snapshot (readers never block the writer), and all sessions share the plan
//! cache, the runtime-feedback store and the UDF memo — so a shape optimized by
//! one client is a warm cache hit for every other.
//!
//! ```text
//! cargo run --example serving
//! ```

use std::thread;

use udf_decorrelation::prelude::*;

const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 25;

fn main() -> Result<()> {
    let engine = Engine::builder()
        .parallelism(2)
        .plan_cache_capacity(256)
        .build();

    // Schema + data + UDF, set up through an ordinary session.
    let admin = engine.session();
    admin.execute(
        "create table customer(custkey int not null, name varchar(25)); \
         create table orders(orderkey int not null, custkey int, totalprice float); \
         create index on orders(custkey)",
    )?;
    admin.execute(
        "insert into customer values (1, 'Alice'), (2, 'Bob'), (3, 'Carol'); \
         insert into orders values \
            (101, 1, 1200000.0), (102, 1, 150000.0), \
            (103, 2, 600000.0), \
            (104, 3, 90000.0), (105, 3, 20000.0)",
    )?;
    admin.register_function(
        "create function service_level(int ckey) returns varchar(10) as \
         begin \
           float totalbusiness; string level; \
           select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
           if (totalbusiness > 1000000) level = 'Platinum'; \
           else if (totalbusiness > 500000) level = 'Gold'; \
           else level = 'Regular'; \
           return level; \
         end",
    )?;

    let sql = "select custkey, service_level(custkey) as level from customer";
    // Warm the shape once so the concurrent clients below hit the shared cache.
    admin.query(sql)?;
    admin.query(sql)?;

    // A writer keeps committing new orders and rebuilding statistics while the
    // clients read: each statement swaps in a new catalog epoch atomically, so
    // readers see entirely-before or entirely-after, never a torn state.
    let writer = engine.session();
    let write_thread = thread::spawn(move || -> Result<()> {
        for i in 0..20 {
            writer.execute(&format!(
                "insert into orders values ({}, {}, {}.0)",
                200 + i,
                1 + i % 3,
                10_000 * (1 + i % 5)
            ))?;
            if i % 10 == 9 {
                writer.execute("analyze orders")?;
            }
        }
        Ok(())
    });

    let clients: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let session = engine.session();
            thread::spawn(move || -> Result<usize> {
                let mut rows = 0;
                for _ in 0..QUERIES_PER_CLIENT {
                    rows += session.query(sql)?.len();
                }
                println!("client {id}: {QUERIES_PER_CLIENT} queries, {rows} rows total");
                Ok(rows)
            })
        })
        .collect();

    for client in clients {
        client.join().expect("client thread")?;
    }
    write_thread.join().expect("writer thread")?;

    let stats = engine.plan_cache_stats();
    println!(
        "\nshared plan cache after {} client queries: {} hits / {} misses \
         ({} invalidations from ANALYZE epochs)",
        CLIENTS * QUERIES_PER_CLIENT,
        stats.hits,
        stats.misses,
        stats.invalidations
    );
    assert!(stats.hits > 0, "concurrent sessions should share plans");
    Ok(())
}
