//! Experiment 2 end to end on generated TPC-H-style data: compare the iterative and
//! decorrelated executions of the paper's `service_level` UDF (Example 1 → Example 2).
//!
//! ```text
//! cargo run --release --example service_level
//! ```

use std::time::Instant;

use udf_decorrelation::engine::QueryOptions;
use udf_decorrelation::prelude::*;
use udf_decorrelation::tpch::{experiment2, generate, TpchConfig};

fn main() -> Result<()> {
    // ~2000 customers / 20000 orders: a laptop-scale stand-in for the paper's TPC-H 10GB.
    let config = TpchConfig::default();
    let mut db = generate(&config)?;
    let workload = experiment2();
    workload.install(&mut db)?;

    println!("{}\n", workload.name);
    for invocations in [100usize, 500, 1_000, 2_000] {
        let sql = (workload.query)(invocations);

        let start = Instant::now();
        let iterative = db.query_with(&sql, &QueryOptions::iterative())?;
        let iterative_time = start.elapsed();

        let start = Instant::now();
        let decorrelated = db.query_with(&sql, &QueryOptions::decorrelated())?;
        let decorrelated_time = start.elapsed();

        assert_eq!(
            iterative.canonical_projection(&["custkey", "level"])?,
            decorrelated.canonical_projection(&["custkey", "level"])?,
            "strategies must agree"
        );
        println!(
            "{invocations:>6} invocations: iterative {:>8.2} ms ({} UDF calls)   decorrelated {:>8.2} ms ({} hash joins)",
            iterative_time.as_secs_f64() * 1e3,
            iterative.exec_stats.udf_invocations,
            decorrelated_time.as_secs_f64() * 1e3,
            decorrelated.exec_stats.hash_joins,
        );
    }

    // Show the rewritten SQL the standalone tool would hand to a commercial database.
    let report = db.rewrite_sql(&(workload.query)(2_000))?;
    println!("\nrewritten SQL:\n{}", report.rewritten_sql);
    Ok(())
}
