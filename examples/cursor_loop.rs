//! Cursor-loop decorrelation (Section VII): the paper's Example 5 `totalloss` UDF is
//! turned into an auxiliary aggregate (Example 6) and the query becomes a set-oriented
//! group-by.
//!
//! ```text
//! cargo run --example cursor_loop
//! ```

use udf_decorrelation::engine::QueryOptions;
use udf_decorrelation::prelude::*;
use udf_decorrelation::tpch::{generate, TpchConfig};

fn main() -> Result<()> {
    let mut db = generate(&TpchConfig::tiny())?;

    // Example 5 of the paper.
    db.register_function(
        "create function totalloss(int pkey, float cost) returns float as \
         begin \
           float total_loss = 0; \
           declare c cursor for \
             select price, qty, disc from lineitem where partkey = :pkey; \
           open c; \
           fetch next from c into @price, @qty, @disc; \
           while @@fetch_status = 0 \
             float profit = (@price - @disc) - (cost * @qty); \
             if (profit < 0) total_loss = total_loss - profit; \
             fetch next from c into @price, @qty, @disc; \
           close c; deallocate c; \
           return total_loss; \
         end",
    )?;

    // The per-part unit cost is passed as a constant (the paper's getCost() helper is a
    // black-box function; a non-constant argument would keep the loop correlated on an
    // outer attribute, which this rewrite intentionally refuses to decorrelate).
    let sql = "select partkey, totalloss(partkey, 5.0) as loss \
               from partsupp where suppkey = 0";

    println!("{}", db.explain(sql)?);

    let iterative = db.query_with(sql, &QueryOptions::iterative())?;
    let decorrelated = db.query_with(sql, &QueryOptions::decorrelated())?;
    assert_eq!(
        iterative.canonical_projection(&["partkey", "loss"])?,
        decorrelated.canonical_projection(&["partkey", "loss"])?
    );
    println!(
        "both strategies agree on {} parts; iterative performed {} UDF invocations, \
         the decorrelated plan performed {}",
        iterative.rows.len(),
        iterative.exec_stats.udf_invocations,
        decorrelated.exec_stats.udf_invocations
    );

    // The synthesised auxiliary aggregate (the paper's Example 6).
    let report = db.rewrite_sql(sql)?;
    for aux in &report.auxiliary_functions {
        println!("\nauxiliary aggregate:\n{aux}");
    }
    Ok(())
}
