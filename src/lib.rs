//! # udf-decorrelation
//!
//! A full reproduction of *"Decorrelation of User Defined Function Invocations in
//! Queries"* (Simhadri et al., ICDE 2014) as a Rust workspace: an in-memory SQL engine
//! with a procedural UDF interpreter, the paper's extended Apply operators and
//! transformation rules (K1–K6, R1–R9), cursor-loop algebraization with auxiliary
//! aggregates, a cost-based optimizer that chooses between iterative and decorrelated
//! plans, and benchmarks reproducing the paper's experiments.
//!
//! This top-level crate simply re-exports the public API of the member crates.
//! Embedded single-client use goes through [`engine::Database`]:
//!
//! ```
//! use udf_decorrelation::prelude::*;
//!
//! let mut db = Database::new();
//! db.execute("create table t(x int, y int)").unwrap();
//! db.execute("insert into t values (1, 10), (2, 20)").unwrap();
//! db.execute("create function double_y(int v) returns int as begin return v * 2; end")
//!     .unwrap();
//! let result = db.query("select x, double_y(y) as yy from t").unwrap();
//! assert_eq!(result.rows.len(), 2);
//! ```
//!
//! Concurrent multi-client serving holds one shared [`engine::Engine`] and opens one
//! cheap [`engine::Session`] per client. Sessions running on different threads share
//! the plan cache, the UDF memo, the runtime-feedback store and the worker pool, while
//! each query pins an immutable catalog snapshot (writers swap in new epochs, readers
//! never block):
//!
//! ```
//! use udf_decorrelation::prelude::*;
//!
//! let engine = Engine::builder().parallelism(2).build();
//! let admin = engine.session();
//! admin.execute("create table t(x int)").unwrap();
//! admin.execute("insert into t values (1), (2), (3)").unwrap();
//! let handles: Vec<_> = (0..4)
//!     .map(|_| {
//!         let session = engine.session();
//!         std::thread::spawn(move || session.query("select x from t").unwrap().len())
//!     })
//!     .collect();
//! for handle in handles {
//!     assert_eq!(handle.join().unwrap(), 3);
//! }
//! ```

pub use decorr_algebra as algebra;
pub use decorr_analysis as analysis;
pub use decorr_common as common;
pub use decorr_engine as engine;
pub use decorr_exec as exec;
pub use decorr_optimizer as optimizer;
pub use decorr_parser as parser;
pub use decorr_persist as persist;
pub use decorr_rewrite as rewrite;
pub use decorr_stats as stats;
pub use decorr_storage as storage;
pub use decorr_tpch as tpch;
pub use decorr_udf as udf;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use decorr_common::{DataType, Error, Result, Row, Schema, Value};
    pub use decorr_engine::{
        Database, Engine, EngineBuilder, ExecutionStrategy, QueryOptions, QueryResult, Session,
    };
    pub use decorr_persist::PersistStats;
    pub use decorr_storage::ShardPolicy;
}
