//! # udf-decorrelation
//!
//! A full reproduction of *"Decorrelation of User Defined Function Invocations in
//! Queries"* (Simhadri et al., ICDE 2014) as a Rust workspace: an in-memory SQL engine
//! with a procedural UDF interpreter, the paper's extended Apply operators and
//! transformation rules (K1–K6, R1–R9), cursor-loop algebraization with auxiliary
//! aggregates, a cost-based optimizer that chooses between iterative and decorrelated
//! plans, and benchmarks reproducing the paper's experiments.
//!
//! This top-level crate simply re-exports the public API of the member crates. Most
//! users only need [`engine::Database`]:
//!
//! ```
//! use udf_decorrelation::prelude::*;
//!
//! let mut db = Database::new();
//! db.execute("create table t(x int, y int)").unwrap();
//! db.execute("insert into t values (1, 10), (2, 20)").unwrap();
//! db.execute("create function double_y(int v) returns int as begin return v * 2; end")
//!     .unwrap();
//! let result = db.query("select x, double_y(y) as yy from t").unwrap();
//! assert_eq!(result.rows.len(), 2);
//! ```

pub use decorr_algebra as algebra;
pub use decorr_common as common;
pub use decorr_engine as engine;
pub use decorr_exec as exec;
pub use decorr_optimizer as optimizer;
pub use decorr_parser as parser;
pub use decorr_rewrite as rewrite;
pub use decorr_stats as stats;
pub use decorr_storage as storage;
pub use decorr_tpch as tpch;
pub use decorr_udf as udf;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use decorr_common::{DataType, Error, Result, Row, Schema, Value};
    pub use decorr_engine::{Database, ExecutionStrategy, QueryOptions, QueryResult};
}
