//! Integration tests of the statistics & feedback subsystem through the engine
//! facade: cached table statistics (the no-rescan regression), sampled `ANALYZE`
//! through SQL, histogram-driven estimates on the experiment plans (a seeded
//! bounded-q-error property test across scale factors), and the headline feedback
//! regression — a workload where the static cost model picks the iterative plan
//! wrongly and runtime feedback flips the decision to the decorrelated plan.

use std::time::Duration;

use udf_decorrelation::engine::{Database, ExecutionStrategy, QueryOptions};
use udf_decorrelation::optimizer::{estimate_per_node, CostParams};
use udf_decorrelation::stats::q_error;
use udf_decorrelation::tpch::{experiment1, experiment2, experiment3, generate, TpchConfig};

// ----------------------------------------------------------- statistics caching

/// Satellite regression: `Table::stats()` used to recompute full-table statistics
/// (a hash-set scan of every row) on every call, and `predicate_selectivity`
/// triggers it per conjunct per optimize. Statistics are now cached with a dirty
/// flag: repeated optimizes against unchanged data must not rescan.
#[test]
fn repeated_optimizes_do_not_rescan_table_statistics() {
    let mut db = Database::new();
    db.execute("create table t(x int, grp int)").unwrap();
    db.execute("insert into t values (1, 0), (2, 0), (3, 1), (4, 1), (5, 2)")
        .unwrap();
    // Several *distinct* query shapes over the same table (distinct shapes so the
    // plan cache cannot absorb the stats lookups), each with multiple conjuncts.
    for limit in 1..=4 {
        db.query(&format!(
            "select x from t where grp = 1 and x <= {limit} and x >= 0"
        ))
        .unwrap();
        db.explain(&format!("select x from t where x <= {limit}"))
            .unwrap();
    }
    let recomputes = db.catalog().table("t").unwrap().stats_recomputes();
    assert_eq!(
        recomputes, 1,
        "eight optimizes over an unchanged table must compute statistics exactly once"
    );
    // New data dirties the cache: exactly one more recompute on next use.
    db.execute("insert into t values (6, 2)").unwrap();
    db.query("select x from t where grp = 2").unwrap();
    assert_eq!(db.catalog().table("t").unwrap().stats_recomputes(), 2);
}

// ------------------------------------------------------------------ ANALYZE surface

#[test]
fn analyze_statement_builds_histogram_statistics() {
    let mut db = Database::new();
    db.execute("create table nums(v int)").unwrap();
    let values: Vec<String> = (0..500).map(|i| format!("({i})")).collect();
    db.execute(&format!("insert into nums values {}", values.join(", ")))
        .unwrap();
    assert!(!db.catalog().table("nums").unwrap().is_analyzed());
    let summaries = db.execute("analyze nums").unwrap();
    assert_eq!(summaries.len(), 1);
    let catalog = db.catalog();
    let table = catalog.table("nums").unwrap();
    assert!(table.is_analyzed());
    let stats = table.stats();
    assert!(stats.is_analyzed());
    let sel = stats
        .range_selectivity("v", None, Some((49.0, true)))
        .expect("histogram after ANALYZE");
    assert!((sel - 0.1).abs() < 0.05, "selectivity {sel}");
    // Bare ANALYZE covers every table.
    db.execute("create table other(w int); insert into other values (1)")
        .unwrap();
    db.execute("analyze").unwrap();
    assert!(db.catalog().table("other").unwrap().is_analyzed());
}

#[test]
fn analyze_invalidates_cached_plans() {
    let mut db = Database::new();
    db.execute("create table t(x int)").unwrap();
    let values: Vec<String> = (0..200).map(|i| format!("({i})")).collect();
    db.execute(&format!("insert into t values {}", values.join(", ")))
        .unwrap();
    // A predicate the default model estimates well (est 60 vs actual 101 rows stays
    // below the q-error threshold), so the feedback loop leaves the entry alone and
    // the invalidation below is attributable to ANALYZE.
    let sql = "select x from t where x <= 100";
    db.query(sql).unwrap();
    assert!(db.query(sql).unwrap().rewrite_report.cache.unwrap().hit);
    // Fresh statistics change cost-based decisions: cached plans must re-optimize.
    db.execute("analyze t").unwrap();
    assert!(
        !db.query(sql).unwrap().rewrite_report.cache.unwrap().hit,
        "ANALYZE must invalidate cached plans"
    );
}

// --------------------------------------------------- estimate accuracy (property)

/// Seeded property test (satellite): after `ANALYZE`, per-node cardinality
/// estimates for the scan/filter/join/aggregate nodes of the three experiment
/// plans stay within a bounded q-error of the executed actuals, across scale
/// factors and invocation counts.
#[test]
fn analyzed_estimates_stay_within_bounded_q_error_across_scales() {
    // (scale, invocations) pairs seeded over both experiment dimensions.
    const SCALES: [f64; 2] = [0.02, 0.05];
    const MAX_Q_SCAN_FILTER: f64 = 4.0;
    const MAX_Q_ANY: f64 = 32.0;
    for &scale in &SCALES {
        for (workload, invocations) in
            [(experiment1(), 30), (experiment2(), 20), (experiment3(), 4)]
        {
            let mut db = generate(&TpchConfig::with_scale(scale)).unwrap();
            db.analyze();
            workload.install(&mut db).unwrap();
            let sql = (workload.query)(invocations);
            // Execute iteratively with per-node cardinality collection: the
            // iterative plan's nodes (scan, filter, project) are exactly the shapes
            // the statistics must estimate well.
            let mut config = db.exec_config().clone();
            config.collect_cardinalities = true;
            let options = QueryOptions {
                exec_config: Some(config),
                ..QueryOptions::iterative()
            };
            let result = db.query_with(&sql, &options).unwrap();
            assert!(!result.node_cardinalities.is_empty());
            // Pair per-node estimates with the recorded actuals by fingerprint. The
            // executed plan is the *normalized* form, so run the same normalisation
            // pipeline the iterative strategy uses before estimating.
            let plan = udf_decorrelation::parser::parse_and_plan(&sql).unwrap();
            let catalog = db.catalog();
            let registry = db.registry();
            let provider = udf_decorrelation::exec::CatalogProvider::new(&catalog, &registry);
            let normalized = udf_decorrelation::optimizer::PassManager::cleanup_pipeline()
                .optimize(&plan, &registry, &provider, Some(catalog.as_ref()))
                .unwrap()
                .plan;
            let params = CostParams::default();
            let estimates = estimate_per_node(&normalized, &catalog, &registry, &params);
            let mut checked = 0;
            for estimate in &estimates {
                let Some(actual) = result
                    .node_cardinalities
                    .iter()
                    .find(|n| n.fingerprint == estimate.fingerprint)
                else {
                    continue;
                };
                let q = q_error(estimate.cardinality, actual.mean_rows());
                let bound = match estimate.operator.as_str() {
                    "Scan" | "Select" => MAX_Q_SCAN_FILTER,
                    _ => MAX_Q_ANY,
                };
                assert!(
                    q <= bound,
                    "{}: {} node estimated {:.1} vs actual {:.1} rows (q-error {q:.1} \
                     > bound {bound}) at scale {scale}",
                    workload.name,
                    estimate.operator,
                    estimate.cardinality,
                    actual.mean_rows(),
                );
                checked += 1;
            }
            assert!(
                checked >= 2,
                "{}: expected estimate/actual pairs for at least the scan and filter \
                 nodes, checked {checked}",
                workload.name
            );
        }
    }
}

/// The root-cardinality q-error reported by the engine improves once tables are
/// analyzed: a narrow range predicate estimated with the default constant misses
/// by a large factor, the histogram estimate does not.
#[test]
fn analyze_improves_root_cardinality_q_error() {
    let workload = experiment1();
    let mut db = generate(&TpchConfig::with_scale(0.05)).unwrap();
    workload.install(&mut db).unwrap();
    let sql = (workload.query)(10);
    let before = db.query_with(&sql, &QueryOptions::iterative()).unwrap();
    db.analyze();
    let after = db.query_with(&sql, &QueryOptions::iterative()).unwrap();
    assert_eq!(before.rows.len(), after.rows.len());
    assert!(
        after.cardinality_q_error < before.cardinality_q_error,
        "analyzed q-error {:.2} must beat unanalyzed {:.2}",
        after.cardinality_q_error,
        before.cardinality_q_error
    );
    assert!(
        after.cardinality_q_error < 2.0,
        "histogram root estimate q-error {:.2}",
        after.cardinality_q_error
    );
}

// ------------------------------------------------------------- feedback flips plans

/// The headline feedback regression. The UDF's correlated query scans an unindexed
/// table, but the static cost model prices correlated execution with the
/// index-assisted discount — so for a small outer table it wrongly picks the
/// iterative plan. Executing it once measures the true per-invocation cost; the
/// feedback loop learns it, invalidates the stale cache entry, and the next
/// optimize flips to the decorrelated plan.
#[test]
fn feedback_flips_a_miscosted_strategy_to_decorrelated() {
    let mut db = Database::new();
    // Wide rows (strings) make per-row interpretation measurably expensive, which
    // is exactly what the index-assuming static model misses on an unindexed scan.
    db.execute(
        "create table customer(custkey int not null); \
         create table orders(orderkey int not null, custkey int, totalprice float, \
                             comment varchar(40), clerk varchar(20))",
    )
    .unwrap();
    // Deliberately NO index on orders.custkey.
    let customers: Vec<String> = (0..40).map(|i| format!("({i})")).collect();
    db.execute(&format!(
        "insert into customer values {}",
        customers.join(", ")
    ))
    .unwrap();
    let mut orders = vec![];
    for i in 0..8_000i64 {
        orders.push(udf_decorrelation::prelude::Row::new(vec![
            i.into(),
            (i % 40).into(),
            (i as f64).into(),
            format!("order comment number {i}").into(),
            format!("Clerk#{}", i % 100).into(),
        ]));
    }
    db.load_rows("orders", orders).unwrap();
    db.register_function(
        "create function total_business(int ckey) returns float as \
         begin return select sum(totalprice) from orders where custkey = :ckey; end",
    )
    .unwrap();
    let sql = "select custkey, total_business(custkey) as total from customer";

    // 1. The static model picks the iterative plan (its correlated discount assumes
    //    an index that does not exist).
    let first = db.query(sql).unwrap();
    assert_eq!(first.strategy, ExecutionStrategy::Auto);
    assert!(
        !first.used_decorrelated_plan,
        "premise: the static model must pick the iterative plan \
         (notes: {:?})",
        first.rewrite_notes
    );
    assert!(first.exec_stats.udf_invocations >= 40);

    // 2. The execution measured the true invocation cost; the feedback loop must
    //    have learned it and flagged the shape.
    let overrides = db
        .feedback()
        .udf_cost_overrides(CostParams::default().row_op_seconds);
    let learned = overrides
        .get("total_business")
        .copied()
        .expect("feedback must learn the UDF cost after 40 invocations");
    assert!(
        learned > 1_000.0,
        "an unindexed 8000-row scan per invocation must cost thousands of row-ops, \
         learned {learned}"
    );
    assert!(
        db.feedback_stats().generation > 1,
        "a mispriced UDF must move the feedback generation"
    );

    // 3. The next optimize re-decides with the learned cost and flips.
    let second = db.query(sql).unwrap();
    assert!(
        second.used_decorrelated_plan,
        "feedback must flip the miscosted strategy to the decorrelated plan \
         (notes: {:?})",
        second.rewrite_notes
    );
    assert!(
        second
            .rewrite_notes
            .iter()
            .any(|n| n.contains("learned UDF cost")),
        "the strategy pass must report the learned costs it used: {:?}",
        second.rewrite_notes
    );
    assert_eq!(
        second.exec_stats.udf_invocations, 0,
        "the decorrelated plan performs no iterative invocations"
    );
    // Both executions agree on the results.
    assert_eq!(
        first.canonical_projection(&["custkey", "total"]).unwrap(),
        second.canonical_projection(&["custkey", "total"]).unwrap()
    );
}

/// Feedback state is engine-local: a cloned database starts with a fresh store.
#[test]
fn cloned_databases_do_not_share_feedback() {
    let mut db = Database::new();
    db.execute("create table t(x int); insert into t values (1), (2), (3)")
        .unwrap();
    db.query("select x from t where x <= 2").unwrap();
    assert!(db.feedback_stats().queries_recorded >= 1);
    let clone = db.clone();
    assert_eq!(clone.feedback_stats().queries_recorded, 0);
    assert_eq!(clone.feedback_stats().generation, 1);
}

/// The feedback trust floors keep one-off timings of nearly-free UDFs from
/// polluting the learned costs (and from invalidating plans).
#[test]
fn cheap_udfs_below_the_trust_floor_learn_nothing() {
    let mut db = Database::new();
    db.execute("create table t(x int); insert into t values (1), (2), (3)")
        .unwrap();
    db.register_function("create function tiny(int v) returns int as begin return v + 1; end")
        .unwrap();
    let result = db
        .query_with(
            "select tiny(x) as y from t",
            &QueryOptions {
                strategy: ExecutionStrategy::Iterative,
                ..QueryOptions::default()
            },
        )
        .unwrap();
    assert_eq!(result.exec_stats.udf_invocations, 3);
    assert!(
        db.feedback()
            .udf_cost_overrides(CostParams::default().row_op_seconds)
            .is_empty(),
        "3 sub-microsecond invocations are below both trust floors"
    );
    assert_eq!(db.feedback_stats().generation, 1);
}

/// `explain_analyze` surfaces the new instrumentation: estimated vs actual rows
/// per operator, the root q-error, and measured UDF costs.
#[test]
fn explain_analyze_reports_estimates_actuals_and_feedback() {
    let mut db = generate(&TpchConfig::tiny()).unwrap();
    db.analyze();
    let workload = experiment2();
    workload.install(&mut db).unwrap();
    let text = db
        .explain_analyze(&(workload.query)(20))
        .expect("explain analyze");
    assert!(
        text.contains("== cardinalities (estimated vs actual) =="),
        "{text}"
    );
    assert!(text.contains("q-error"), "{text}");
    assert!(text.contains("== feedback =="), "{text}");
    assert!(text.contains("root cardinality"), "{text}");
    assert!(text.contains("feedback store"), "{text}");
}

/// End-to-end sanity for the timing plumbing: iterative executions report per-UDF
/// wall clocks on the query result.
#[test]
fn query_results_carry_udf_timings() {
    let mut db = generate(&TpchConfig::tiny()).unwrap();
    let workload = experiment2();
    workload.install(&mut db).unwrap();
    let result = db
        .query_with(&(workload.query)(20), &QueryOptions::iterative())
        .unwrap();
    let timing = result
        .udf_timings
        .iter()
        .find(|t| t.name == "service_level")
        .expect("service_level timing recorded");
    assert_eq!(timing.invocations, result.exec_stats.udf_invocations);
    assert!(timing.total > Duration::ZERO);
}
