//! Static plan validation wired through the optimizer: a buggy rewrite pass fails
//! loudly with a named-pass, named-violation error; the real pipeline's intermediate
//! plans validate clean on every experiment-style workload; and the UDF body analyzer
//! rejects registrations whose declared determinism contradicts the body.

use udf_decorrelation::algebra::{ProjectItem, RelExpr, ScalarExpr};
use udf_decorrelation::common::{Result, SmallRng};
use udf_decorrelation::engine::Database;
use udf_decorrelation::exec::CatalogProvider;
use udf_decorrelation::optimizer::{OptimizerPass, PassContext, PassEffect, PassManager};
use udf_decorrelation::tpch::{experiment1, experiment2, experiment3, generate, TpchConfig};

// ----------------------------------------------------------- broken-rule detection

/// A deliberately buggy "rewrite": wraps the plan in a projection of a column no
/// input produces — the kind of malformed output a botched rule would emit.
struct DanglingProjectPass;

impl OptimizerPass for DanglingProjectPass {
    fn name(&self) -> &'static str {
        "broken-for-test"
    }

    fn run(&self, plan: &RelExpr, _ctx: &mut PassContext) -> Result<PassEffect> {
        let broken = RelExpr::Project {
            input: Box::new(plan.clone()),
            items: vec![ProjectItem {
                expr: ScalarExpr::column("no_such_column"),
                alias: Some("boom".into()),
            }],
            distinct: false,
        };
        Ok(PassEffect::unchanged(broken))
    }
}

/// Acceptance: a broken rewrite rule appended to the real pipeline is caught by the
/// per-pass validator, and the error names both the offending pass and the violation.
#[test]
fn broken_rewrite_pass_fails_with_named_violation() {
    let workload = experiment2();
    let mut db = generate(&TpchConfig::tiny()).unwrap();
    workload.install(&mut db).unwrap();
    let plan = udf_decorrelation::parser::parse_and_plan(&(workload.query)(10)).unwrap();
    let catalog = db.catalog();
    let registry = db.registry();
    let provider = CatalogProvider::new(&catalog, &registry);

    let manager = PassManager::rewrite_pipeline()
        .with_pass(DanglingProjectPass)
        .with_validation(true);
    let err = manager
        .optimize(&plan, &registry, &provider, Some(catalog.as_ref()))
        .expect_err("the validator must reject the dangling projection");
    assert_eq!(err.kind(), "rewrite");
    let message = err.to_string();
    assert!(
        message.contains("broken-for-test"),
        "error must name the offending pass: {message}"
    );
    assert!(
        message.contains("[unresolved-column]") && message.contains("no_such_column"),
        "error must name the violation: {message}"
    );

    // The same pipeline without the broken pass optimizes the plan cleanly, and every
    // executed pass records its validation checks.
    let clean = PassManager::rewrite_pipeline()
        .with_validation(true)
        .optimize(&plan, &registry, &provider, Some(catalog.as_ref()))
        .expect("the real pipeline validates clean");
    for pass in &clean.report.passes {
        let checks = pass
            .validation_checks
            .unwrap_or_else(|| panic!("pass '{}' was not validated", pass.name));
        assert!(checks > 0, "pass '{}' recorded zero checks", pass.name);
    }
    assert!(
        clean.report.render().contains("plan validation:"),
        "EXPLAIN-style render must carry the validation section:\n{}",
        clean.report.render()
    );
}

/// A plan that arrives *already* malformed is a user error, not a rule bug: the
/// engine keeps surfacing its properly-kinded catalog/binding error instead of a
/// validation failure (the validator only arms itself on initially-clean plans).
#[test]
fn user_errors_keep_their_kind_with_validation_on() {
    let db = Database::new();
    let err = db.query("select * from missing").unwrap_err();
    assert_eq!(err.kind(), "catalog", "{err}");
}

// ----------------------------------------------------------- pipeline-wide property

/// Seeded property test: across random experiment-1/2/3-style queries, every
/// intermediate plan of the full rewrite fixpoint validates clean, at cost-model
/// parallelism 1 and 4 alike.
#[test]
fn every_intermediate_plan_validates_clean_across_workloads() {
    let mut db = generate(&TpchConfig::tiny()).unwrap();
    let workloads = [experiment1(), experiment2(), experiment3()];
    for w in &workloads {
        w.install(&mut db).unwrap();
    }
    let catalog = db.catalog();
    let registry = db.registry();
    let provider = CatalogProvider::new(&catalog, &registry);

    let mut rng = SmallRng::seed_from_u64(0x9A11DA7E);
    for case in 0..24u64 {
        let workload = &workloads[rng.gen_range_usize(0, workloads.len())];
        let invocations = rng.gen_range_usize(1, 40);
        let plan = udf_decorrelation::parser::parse_and_plan(&(workload.query)(invocations))
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        for parallelism in [1usize, 4] {
            let manager = PassManager::decorrelation_pipeline()
                .with_validation(true)
                .with_parallelism(parallelism);
            let outcome = manager
                .optimize(&plan, &registry, &provider, Some(catalog.as_ref()))
                .unwrap_or_else(|e| {
                    panic!(
                        "case {case} ({}, {invocations} invocations, parallelism \
                         {parallelism}) failed validation: {e}",
                        workload.name
                    )
                });
            for pass in &outcome.report.passes {
                assert!(
                    pass.validation_checks.is_some(),
                    "case {case}: pass '{}' skipped validation",
                    pass.name
                );
            }
        }
    }
}

// ----------------------------------------------------------- registration analysis

/// Acceptance: a UDF *explicitly declared* DETERMINISTIC whose body calls a volatile
/// UDF is rejected at registration with a diagnostic naming the volatile callee.
#[test]
fn deterministic_declaration_over_volatile_callee_is_rejected() {
    let mut db = Database::new();
    db.execute("create table t(x int)").unwrap();
    db.register_function("create function vol(int x) returns int volatile as begin return x; end")
        .unwrap();
    let err = db
        .register_function(
            "create function det(int x) returns int deterministic as \
             begin return vol(x) + 1; end",
        )
        .expect_err("a DETERMINISTIC wrapper over a volatile callee must be rejected");
    assert_eq!(err.kind(), "binding", "{err}");
    let message = err.to_string();
    assert!(
        message.contains("det") && message.contains("DETERMINISTIC") && message.contains("vol"),
        "diagnostic must name the function, the contract and the volatile callee: {message}"
    );

    // The rejection also fires through the SQL surface (`execute`), not just the
    // registration API.
    let err = db
        .execute(
            "create function det2(int x) returns int deterministic as \
             begin return vol(x) * 2; end",
        )
        .expect_err("execute must reject the same contradiction");
    assert_eq!(err.kind(), "binding", "{err}");
}

/// A UDF that merely inherits the pure-by-default contract (no explicit clause) is
/// silently downgraded to volatile instead of rejected — the default is a default,
/// not a promise.
#[test]
fn inherited_purity_is_downgraded_not_rejected() {
    let mut db = Database::new();
    db.execute("create table t(x int)").unwrap();
    db.register_function("create function vol(int x) returns int volatile as begin return x; end")
        .unwrap();
    db.register_function("create function lax(int x) returns int as begin return vol(x) + 1; end")
        .expect("an undeclared default must downgrade silently");
    let registry = db.registry();
    let lax = registry.udf("lax").unwrap();
    assert!(
        !lax.pure,
        "transitively volatile body must clear the inferred pure flag"
    );
    // And the volatility is transitive: a third hop inherits it too.
    db.register_function(
        "create function laxer(int x) returns int as begin return lax(x) - 1; end",
    )
    .unwrap();
    assert!(!db.registry().udf("laxer").unwrap().pure);
}
