//! Concurrent multi-session serving: several [`Session`]s on one shared [`Engine`],
//! interleaving reads with inserts, `ANALYZE` and UDF re-registration.
//!
//! Three contracts are driven here end to end:
//!
//! * **isolation without blocking** — every query pins a catalog snapshot; concurrent
//!   writers swap in new epochs, so nothing panics, deadlocks or tears mid-query;
//! * **determinism** — each session's query results are byte-identical to a serial
//!   replay of the same seeded operation sequence on a fresh engine (shared tables
//!   are read-only during the stress, private tables are written by exactly one
//!   session, and UDF re-registration reuses the same body);
//! * **sharing** — a plan optimized by one session is a plan-cache hit for another.

use std::thread;

use udf_decorrelation::common::{Row, SmallRng, Value};
use udf_decorrelation::engine::{Engine, Session};

const SESSIONS: usize = 4;
const OPS_PER_SESSION: usize = 40;

const SERVICE_LEVEL_SQL: &str = "create function service_level(int ckey) returns varchar(10) as \
     begin \
       float totalbusiness; string level; \
       select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
       if (totalbusiness > 200000) level = 'Platinum'; \
       else if (totalbusiness > 50000) level = 'Gold'; \
       else level = 'Regular'; \
       return level; \
     end";

/// Shared customer/orders tables plus one private `events_<i>` table per session.
fn build_engine(parallelism: usize) -> Engine {
    let engine = Engine::builder().parallelism(parallelism).build();
    let admin = engine.session();
    admin
        .execute(
            "create table customer(custkey int not null, name varchar(25)); \
             create table orders(orderkey int not null, custkey int, totalprice float); \
             create index on orders(custkey)",
        )
        .unwrap();
    let customers: Vec<Row> = (1..=30i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::str(format!("Customer#{i}"))]))
        .collect();
    engine.load_rows("customer", customers).unwrap();
    let mut orders = vec![];
    let mut orderkey = 0i64;
    for i in 1..=30i64 {
        for _ in 0..i {
            orderkey += 1;
            orders.push(Row::new(vec![
                Value::Int(orderkey),
                Value::Int(i),
                Value::Float(1000.0 * i as f64),
            ]));
        }
    }
    engine.load_rows("orders", orders).unwrap();
    for t in 0..SESSIONS {
        admin
            .execute(&format!(
                "create table events_{t}(id int not null, grp int, amount float)"
            ))
            .unwrap();
    }
    admin.register_function(SERVICE_LEVEL_SQL).unwrap();
    engine
}

/// Runs one session's seeded operation mix and returns the log of query results
/// (canonicalized: strategy choices may differ between runs, results may not).
fn run_session(session: &Session, t: usize) -> Vec<String> {
    let mut rng = SmallRng::seed_from_u64(1000 + t as u64);
    let mut next_id = 0i64;
    let mut log = vec![];
    for step in 0..OPS_PER_SESSION {
        let roll = rng.gen_range_i64(0, 100);
        if roll < 55 {
            // Shared-shape query: every session submits the same SQL, so the plan
            // cache serves one optimized entry to all of them.
            let result = session
                .query("select custkey, service_level(custkey) as level from customer")
                .unwrap();
            log.push(
                result
                    .canonical_projection(&["custkey", "level"])
                    .unwrap()
                    .join("|"),
            );
        } else if roll < 75 {
            // Private insert: only this session writes events_<t>.
            next_id += 1;
            let grp = next_id % 5;
            let amount = step as f64 * 1.5 + t as f64;
            session
                .execute(&format!(
                    "insert into events_{t} values ({next_id}, {grp}, {amount})"
                ))
                .unwrap();
        } else if roll < 90 {
            // Private query over this session's own writes.
            let grp = rng.gen_range_i64(0, 5);
            let result = session
                .query(&format!(
                    "select id, amount from events_{t} where grp = {grp}"
                ))
                .unwrap();
            let mut rows: Vec<String> = result.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            log.push(rows.join("|"));
        } else if roll < 95 {
            // ANALYZE interleaves statistics rebuilds (a DDL-generation bump that
            // invalidates cached plans engine-wide) with everyone else's queries.
            let table = if roll % 2 == 0 {
                "orders".to_string()
            } else {
                format!("events_{t}")
            };
            session.execute(&format!("analyze {table}")).unwrap();
        } else {
            // Re-register the shared UDF with the same body: bumps the registry
            // generation (flushing memoized results) without changing any answer.
            session.register_function(SERVICE_LEVEL_SQL).unwrap();
        }
    }
    log
}

/// The tentpole stress: `SESSIONS` threads race reads, writes, ANALYZE and UDF
/// re-registration on one engine; every session's query log must be byte-identical
/// to a serial replay of the same seeded sequence on a fresh engine.
#[test]
fn concurrent_sessions_match_serial_replay() {
    let engine = build_engine(2);
    let handles: Vec<_> = (0..SESSIONS)
        .map(|t| {
            let session = engine.session();
            thread::spawn(move || run_session(&session, t))
        })
        .collect();
    let concurrent_logs: Vec<Vec<String>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Serial replay: same seeds, same op sequences, one session at a time.
    let replay_engine = build_engine(2);
    for (t, concurrent) in concurrent_logs.iter().enumerate() {
        let serial = run_session(&replay_engine.session(), t);
        assert_eq!(
            concurrent, &serial,
            "session {t}: concurrent results diverge from serial replay"
        );
    }

    // The sessions shared one plan cache: the repeated shared shape must have been
    // served from it across sessions.
    let stats = engine.plan_cache_stats();
    assert!(
        stats.hits > 0,
        "no cross-session plan-cache hits: {stats:?}"
    );
}

/// A plan optimized (and feedback-calibrated) by session A is a warm cache hit for
/// session B — no re-optimization.
#[test]
fn plan_warmed_by_one_session_hits_in_another() {
    let engine = build_engine(1);
    let sql = "select custkey, service_level(custkey) as level from customer";
    let a = engine.session();
    // Twice: the first execution's runtime feedback may invalidate its own entry
    // (cold statistics); the re-optimized entry is the stable one.
    a.query(sql).unwrap();
    a.query(sql).unwrap();
    let before = engine.plan_cache_stats();
    let b = engine.session();
    let result = b.query(sql).unwrap();
    let after = engine.plan_cache_stats();
    assert!(after.hits > before.hits, "{before:?} vs {after:?}");
    assert_eq!(result.len(), 30);
}

/// Writers never block readers: a long sequence of inserts/ANALYZE on one thread
/// while another thread queries a pinned snapshot per statement — every read sees a
/// consistent row count (never a torn intermediate state).
#[test]
fn snapshot_reads_are_consistent_under_concurrent_writes() {
    let engine = build_engine(1);
    let writer = engine.session();
    let reader = engine.session();
    let write_thread = thread::spawn(move || {
        for i in 0..50 {
            writer
                .execute(&format!("insert into events_0 values ({i}, 0, 1.0)"))
                .unwrap();
            if i % 10 == 0 {
                writer.execute("analyze events_0").unwrap();
            }
        }
    });
    let mut last = 0usize;
    for _ in 0..50 {
        let n = reader.query("select id from events_0").unwrap().len();
        // Row counts grow monotonically: each statement commits atomically via the
        // epoch swap, so a reader can never observe a partial insert.
        assert!(n >= last, "row count went backwards: {last} -> {n}");
        last = n;
    }
    write_thread.join().unwrap();
    assert_eq!(reader.query("select id from events_0").unwrap().len(), 50);
}

/// The deprecated-path equivalence: the `Database` facade and a direct `Session` on
/// the same engine return identical results for the full statement surface.
#[test]
fn database_facade_and_session_agree() {
    use udf_decorrelation::engine::Database;
    let engine = build_engine(1);
    let db = Database::from_engine(engine.clone());
    let session = engine.session();
    let sql = "select custkey, service_level(custkey) as level from customer";
    assert_eq!(
        db.query(sql)
            .unwrap()
            .canonical_projection(&["custkey", "level"])
            .unwrap(),
        session
            .query(sql)
            .unwrap()
            .canonical_projection(&["custkey", "level"])
            .unwrap()
    );
    // EXPLAIN carries a per-call cache trace (miss on the first call, hit on the
    // second), so compare the plan + decision sections only.
    let plans = |text: String| {
        text.split("== optimizer passes ==")
            .next()
            .unwrap()
            .to_string()
    };
    assert_eq!(
        plans(db.explain(sql).unwrap()),
        plans(session.explain(sql).unwrap())
    );
    assert_eq!(
        db.rewrite_sql(sql).unwrap().rewritten_sql,
        session.rewrite_sql(sql).unwrap().rewritten_sql
    );
}
