//! Cross-crate integration tests: the three paper experiments executed end to end, with
//! the iterative and decorrelated strategies compared for result equality and for the
//! execution characteristics the paper describes.

use udf_decorrelation::engine::QueryOptions;
use udf_decorrelation::tpch::{experiment1, experiment2, experiment3, generate, TpchConfig};

fn run_experiment(workload: udf_decorrelation::tpch::Workload, invocations: usize) {
    let mut db = generate(&TpchConfig::tiny()).unwrap();
    workload.install(&mut db).unwrap();
    let sql = (workload.query)(invocations);

    let iterative = db.query_with(&sql, &QueryOptions::iterative()).unwrap();
    let decorrelated = db.query_with(&sql, &QueryOptions::decorrelated()).unwrap();

    // 1. Results agree (order-insensitive, compared by output column name).
    let columns: Vec<&str> = iterative
        .schema
        .columns
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(
        iterative.canonical_projection(&columns).unwrap(),
        decorrelated.canonical_projection(&columns).unwrap(),
        "results differ for {}",
        workload.name
    );

    // 2. The iterative plan really is iterative (one UDF invocation per outer row) and
    //    the decorrelated plan performs none.
    assert_eq!(
        iterative.exec_stats.udf_invocations as usize,
        iterative.rows.len(),
        "iterative execution must invoke the UDF once per row"
    );
    assert_eq!(decorrelated.exec_stats.udf_invocations, 0);

    // 3. The explain output shows both alternatives.
    let explain = db.explain(&sql).unwrap();
    assert!(explain.contains("decorrelated plan"), "{explain}");

    // 4. Re-running both strategies is served from the plan cache and produces exactly
    //    the same results as the fresh (cold) runs.
    for (fresh, options) in [
        (&iterative, QueryOptions::iterative()),
        (&decorrelated, QueryOptions::decorrelated()),
    ] {
        let warm = db.query_with(&sql, &options).unwrap();
        assert!(
            warm.rewrite_report.cache.expect("cache attached").hit,
            "repeated {:?} run must be served from the plan cache for {}",
            options.strategy,
            workload.name
        );
        assert_eq!(
            warm.canonical_projection(&columns).unwrap(),
            fresh.canonical_projection(&columns).unwrap(),
            "cached and fresh outcomes disagree for {}",
            workload.name
        );
        assert_eq!(warm.used_decorrelated_plan, fresh.used_decorrelated_plan);
    }
}

#[test]
fn experiment1_discount_over_orders() {
    run_experiment(experiment1(), 60);
}

#[test]
fn experiment2_service_level_over_customers() {
    run_experiment(experiment2(), 40);
}

#[test]
fn experiment3_cursor_loop_over_categories() {
    run_experiment(experiment3(), 10);
}

#[test]
fn decorrelated_plan_scales_better_in_work_performed() {
    // Not a timing test (timings belong to the bench harness): compare *work counters*.
    // The iterative plan's subquery executions grow linearly with the invocation count;
    // the decorrelated plan's stay constant.
    let workload = experiment2();
    let mut db = generate(&TpchConfig::tiny()).unwrap();
    workload.install(&mut db).unwrap();

    let small = db
        .query_with(&(workload.query)(10), &QueryOptions::iterative())
        .unwrap();
    let large = db
        .query_with(&(workload.query)(50), &QueryOptions::iterative())
        .unwrap();
    assert!(large.exec_stats.udf_invocations > small.exec_stats.udf_invocations);
    assert!(large.exec_stats.index_lookups > small.exec_stats.index_lookups);

    let small_d = db
        .query_with(&(workload.query)(10), &QueryOptions::decorrelated())
        .unwrap();
    let large_d = db
        .query_with(&(workload.query)(50), &QueryOptions::decorrelated())
        .unwrap();
    assert_eq!(small_d.exec_stats.udf_invocations, 0);
    assert_eq!(
        small_d.exec_stats.rows_scanned, large_d.exec_stats.rows_scanned,
        "the decorrelated plan scans the same data regardless of the invocation count"
    );
}

#[test]
fn rewrite_tool_emits_sql_for_every_experiment() {
    let mut db = generate(&TpchConfig::tiny()).unwrap();
    for workload in [experiment1(), experiment2(), experiment3()] {
        workload.install(&mut db).unwrap();
        let report = db.rewrite_sql(&(workload.query)(100)).unwrap();
        assert!(report.decorrelated, "{}: {:?}", workload.name, report.notes);
        assert!(report.rewritten_sql.to_lowercase().contains("join"));
    }
}
