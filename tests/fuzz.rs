//! Seeded grammar-based fuzzing of the whole pipeline — parser → optimizer →
//! executor → snapshot/restore — plus the durability layer's hostile-bytes front
//! door. Deterministic (in-repo `SmallRng`, fixed base seed) so a failure is a
//! replayable regression, not a flake. `DECORR_FUZZ_ITERS` scales the iteration
//! count (default 60; CI's fuzz-smoke step runs 500).
//!
//! Three properties, asserted every iteration:
//!  1. nothing panics — generated statements may fail, but as `Err`, and serial
//!     and parallel engines must fail identically;
//!  2. serial and parallel executions agree byte-for-byte on every query;
//!  3. an engine checkpointed (or WAL-recovered), dropped and reopened answers
//!     the same queries byte-identically.

use std::path::{Path, PathBuf};

use udf_decorrelation::common::{DataType, SmallRng};
use udf_decorrelation::engine::{Engine, Session};
use udf_decorrelation::persist::Snapshot;

fn fuzz_iters() -> u64 {
    std::env::var("DECORR_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// A unique throwaway data directory, removed when dropped.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "decorr_fuzz_{}_{tag}_{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The generated schema the query grammar draws from.
struct FuzzTable {
    name: String,
    /// (column name, type); `c0` is always a non-null int.
    columns: Vec<(String, DataType)>,
    /// Name of a registered UDF keyed on `c0`, if one was generated.
    udf: Option<String>,
}

impl FuzzTable {
    fn columns_of(&self, ty: DataType) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|(_, t)| *t == ty)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

fn gen_literal(rng: &mut SmallRng, ty: DataType) -> String {
    match ty {
        DataType::Int => rng.gen_range_i64(-100, 100).to_string(),
        DataType::Float => match rng.gen_range_usize(0, 8) {
            0 => "-0.0".to_string(),
            1 => "0.0".to_string(),
            _ => format!("{:.3}", rng.gen_range_f64(-1e4, 1e4)),
        },
        _ => {
            let len = rng.gen_range_usize(0, 5);
            let s: String = (0..len)
                .map(|_| (b'a' + rng.gen_range_usize(0, 26) as u8) as char)
                .collect();
            format!("'{s}'")
        }
    }
}

/// Generates the DDL/DML statement stream for one iteration. Every statement is a
/// plain SQL string so the identical stream drives every engine under test.
fn gen_statements(rng: &mut SmallRng) -> (Vec<FuzzTable>, Vec<String>) {
    let mut tables = vec![];
    let mut statements = vec![];
    let n_tables = rng.gen_range_usize(1, 3);
    for t in 0..n_tables {
        let mut columns = vec![("c0".to_string(), DataType::Int)];
        let mut decls = vec!["c0 int not null".to_string()];
        for c in 1..=rng.gen_range_usize(1, 4) {
            let (ty, decl) = match rng.gen_range_usize(0, 3) {
                0 => (DataType::Int, "int"),
                1 => (DataType::Float, "float"),
                _ => (DataType::Str, "varchar(8)"),
            };
            columns.push((format!("c{c}"), ty));
            decls.push(format!("c{c} {decl}"));
        }
        let name = format!("t{t}");
        statements.push(format!("create table {name}({})", decls.join(", ")));
        // Insert batches; c0 values overlap across tables so joins hit.
        for _ in 0..rng.gen_range_usize(1, 4) {
            let rows: Vec<String> = (0..rng.gen_range_usize(1, 16))
                .map(|_| {
                    let vals: Vec<String> = columns
                        .iter()
                        .map(|(_, ty)| gen_literal(rng, *ty))
                        .collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            statements.push(format!("insert into {name} values {}", rows.join(", ")));
        }
        if rng.gen_bool() {
            statements.push(format!("create index on {name}(c0)"));
        }
        let mut table = FuzzTable {
            name,
            columns,
            udf: None,
        };
        // A correlated-aggregate UDF over this table, when it has a float column.
        if let Some(fcol) = table.columns_of(DataType::Float).first() {
            if rng.gen_bool() {
                let fname = format!("f{t}");
                statements.push(format!(
                    "create function {fname}(int k) returns float as \
                     begin return select sum({fcol}) from {} where c0 = :k; end",
                    table.name,
                ));
                table.udf = Some(fname);
            }
        }
        tables.push(table);
    }
    if rng.gen_bool() {
        statements.push("analyze".to_string());
    }
    (tables, statements)
}

/// Generates the query battery for one iteration.
fn gen_queries(rng: &mut SmallRng, tables: &[FuzzTable]) -> Vec<String> {
    let mut queries = vec![];
    for _ in 0..rng.gen_range_usize(4, 9) {
        let table = &tables[rng.gen_range_usize(0, tables.len())];
        let sql = match rng.gen_range_usize(0, 5) {
            // Projection, optionally filtered.
            0 => {
                let n = rng.gen_range_usize(1, table.columns.len() + 1);
                let cols: Vec<&str> = table
                    .columns
                    .iter()
                    .take(n)
                    .map(|(c, _)| c.as_str())
                    .collect();
                let mut sql = format!("select {} from {}", cols.join(", "), table.name);
                if rng.gen_bool() {
                    let (col, ty) = &table.columns[rng.gen_range_usize(0, table.columns.len())];
                    let op = ["=", ">=", "<=", "<>"][rng.gen_range_usize(0, 4)];
                    sql.push_str(&format!(" where {col} {op} {}", gen_literal(rng, *ty)));
                }
                sql
            }
            // Star scan with a range predicate on the key.
            1 => format!(
                "select * from {} where c0 >= {} and c0 <= {}",
                table.name,
                rng.gen_range_i64(-100, 0),
                rng.gen_range_i64(0, 100),
            ),
            // Grouped aggregate over a float column, else a count-ish fallback.
            2 => match table.columns_of(DataType::Float).first() {
                Some(fcol) => format!(
                    "select c0, sum({fcol}) as s from {} group by c0",
                    table.name
                ),
                None => format!("select c0 from {} where c0 <> 0", table.name),
            },
            // Self/cross join on the shared key domain.
            3 => {
                let right = &tables[rng.gen_range_usize(0, tables.len())];
                format!(
                    "select a.c0 from {} a join {} b on a.c0 = b.c0",
                    table.name, right.name,
                )
            }
            // UDF invocation when one exists — the decorrelation front door.
            _ => match &table.udf {
                Some(f) => format!("select c0, {f}(c0) as v from {}", table.name),
                None => format!("select c0 from {}", table.name),
            },
        };
        queries.push(sql);
    }
    queries
}

/// Executes one statement, folding success and failure into a comparable outcome.
fn apply(session: &Session, sql: &str) -> String {
    match session.execute(sql) {
        Ok(_) => "ok".to_string(),
        Err(e) => format!("error: {e}"),
    }
}

/// Runs one query verbatim (row order included), folding errors into the outcome.
fn run(session: &Session, sql: &str) -> String {
    match session.query(sql) {
        Ok(r) => {
            let rows: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
            rows.join("|")
        }
        Err(e) => format!("error: {e}"),
    }
}

/// The pipeline property: for every seed, serial, parallel and restored engines
/// agree byte-for-byte on every generated statement and query outcome.
#[test]
fn generated_workloads_agree_serial_parallel_and_restored() {
    let iters = fuzz_iters();
    for i in 0..iters {
        let mut rng = SmallRng::seed_from_u64(0xF0CC_5EED ^ (i.wrapping_mul(0x9E37_79B9)));
        let (tables, statements) = gen_statements(&mut rng);
        let queries = gen_queries(&mut rng, &tables);
        let shards = rng.gen_range_usize(1, 9);
        let dir = TempDir::new(&format!("iter{i}"));

        let serial = Engine::builder()
            .shard_count(shards)
            .parallelism(1)
            .data_dir(dir.path())
            .build();
        let parallel = Engine::builder().shard_count(shards).parallelism(4).build();
        let serial_session = serial.session();
        let parallel_session = parallel.session();
        for sql in &statements {
            let a = apply(&serial_session, sql);
            let b = apply(&parallel_session, sql);
            assert_eq!(a, b, "iter {i}: statement outcome diverged for `{sql}`");
        }
        let mut expected = vec![];
        for sql in &queries {
            let a = run(&serial_session, sql);
            let b = run(&parallel_session, sql);
            assert_eq!(
                a,
                b,
                "iter {i}: serial/parallel diverged for `{sql}`\nworkload:\n  {}",
                statements.join(";\n  ")
            );
            expected.push(a);
        }
        // Half the iterations checkpoint (restore from snapshot), half rely on WAL
        // replay alone — both recovery paths stay fuzzed.
        if rng.gen_bool() {
            serial.checkpoint().unwrap();
        }
        drop(serial);

        let restored = Engine::builder()
            .parallelism(1)
            .data_dir(dir.path())
            .build();
        let restored_session = restored.session();
        for (sql, want) in queries.iter().zip(&expected) {
            let got = run(&restored_session, sql);
            assert_eq!(&got, want, "iter {i}: restored engine diverged for `{sql}`");
        }
    }
}

/// The front-door property: hostile bytes — random mutations and truncations of a
/// real snapshot, and raw garbage in both durability files — produce `Ok`/`Err`,
/// never a panic, and never a successfully "restored" corrupt engine.
#[test]
fn hostile_bytes_never_panic_the_durability_front_door() {
    let dir = TempDir::new("hostile");
    {
        let engine = Engine::builder().data_dir(dir.path()).build();
        engine
            .session()
            .execute(
                "create table t(x int not null, y float, z varchar(8)); \
                 insert into t values (1, 1.5, 'ab'), (2, -0.0, ''), (3, 9.75, 'xyz')",
            )
            .unwrap();
        engine.checkpoint().unwrap();
    }
    let snapshot_path = dir.path().join(udf_decorrelation::persist::SNAPSHOT_FILE);
    let wal_path = dir.path().join(udf_decorrelation::persist::WAL_FILE);
    let good = std::fs::read(&snapshot_path).unwrap();

    let mut rng = SmallRng::seed_from_u64(0xBAD_B17E5);
    let iters = fuzz_iters();
    for i in 0..iters {
        // Mutate: up to 4 byte-flips plus an optional truncation.
        let mut bytes = good.clone();
        for _ in 0..rng.gen_range_usize(1, 5) {
            let pos = rng.gen_range_usize(0, bytes.len());
            bytes[pos] ^= (rng.next_u64() % 255 + 1) as u8;
        }
        if rng.gen_bool() {
            bytes.truncate(rng.gen_range_usize(0, bytes.len() + 1));
        }
        // Direct decode of hostile bytes: must return, not panic.
        let _ = Snapshot::decode(&bytes);
        // Full open with the hostile snapshot (and, sometimes, garbage WAL).
        std::fs::write(&snapshot_path, &bytes).unwrap();
        if rng.gen_bool() {
            let garbage: Vec<u8> = (0..rng.gen_range_usize(0, 128))
                .map(|_| (rng.next_u64() & 0xFF) as u8)
                .collect();
            std::fs::write(&wal_path, &garbage).unwrap();
        } else {
            let _ = std::fs::remove_file(&wal_path);
        }
        match Engine::builder().data_dir(dir.path()).try_build() {
            // A mutated-but-accepted snapshot must still be the original content
            // (e.g. a flip confined to bytes a truncation then removed is fine
            // only if the checksum still held — verify by querying).
            Ok(engine) => {
                let r = engine.session().query("select x from t").unwrap();
                assert_eq!(r.rows.len(), 3, "iter {i}: corrupt state slipped through");
            }
            Err(e) => assert_eq!(e.kind(), "persist", "iter {i}: unexpected error kind"),
        }
    }
    // Leave the good bytes behind so the TempDir drop isn't hiding a poisoned dir.
    std::fs::write(&snapshot_path, &good).unwrap();
    let _ = std::fs::remove_file(&wal_path);
    Engine::builder().data_dir(dir.path()).try_build().unwrap();
}
