//! Property-based tests of the transformation rules (Tables I and II).
//!
//! For randomly generated data and parameters, a plan built from the extended Apply
//! operators must produce exactly the same result before and after the rewrite rules are
//! applied — rule application may change the plan shape but never the query answer.
//!
//! The workspace builds hermetically (no crates.io access), so instead of `proptest`
//! these tests drive a small deterministic case generator seeded per property: every run
//! explores the same cases, and a failing case prints its seed for replay.

use udf_decorrelation::algebra::{
    display::explain, AggCall, AggFunc, ApplyKind, PlanBuilder, RelExpr, ScalarExpr as E,
};
use udf_decorrelation::common::{Column, DataType, Row, Schema, SmallRng, Value};
use udf_decorrelation::exec::{CatalogProvider, Executor};
use udf_decorrelation::rewrite::rules::RuleSet;
use udf_decorrelation::rewrite::FixpointEngine;
use udf_decorrelation::storage::Catalog;
use udf_decorrelation::udf::FunctionRegistry;

const CASES: u64 = 48;

/// Runs `property` for [`CASES`] deterministic pseudo-random cases.
fn check_property(name: &str, property: impl Fn(&mut SmallRng)) {
    for case in 0..CASES {
        let seed = 0xDEC0_0000 + case;
        let mut rng = SmallRng::seed_from_u64(seed);
        // A panic inside the property already carries the plan; add the seed so the
        // failing case can be replayed in isolation.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(panic) = result {
            eprintln!("property '{name}' failed for seed {seed:#x} (case {case})");
            std::panic::resume_unwind(panic);
        }
    }
}

/// `(id, grp, amount)` rows for the `accounts` table.
fn arb_rows(rng: &mut SmallRng, min: usize, max: usize) -> Vec<(i64, i64, f64)> {
    let n = rng.gen_range_usize(min, max);
    (0..n)
        .map(|_| {
            (
                rng.gen_range_i64(0, 50),
                rng.gen_range_i64(0, 6),
                rng.gen_range_f64(-100.0, 100.0),
            )
        })
        .collect()
}

/// Builds a catalog with one `accounts(id, grp, amount)` table holding the given rows.
fn catalog_with_accounts(rows: &[(i64, i64, f64)]) -> Catalog {
    let mut catalog = Catalog::new();
    catalog
        .create_table(
            "accounts",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::new("amount", DataType::Float),
            ]),
        )
        .unwrap();
    catalog
        .insert_rows(
            "accounts",
            rows.iter()
                .map(|(id, grp, amount)| {
                    Row::new(vec![
                        Value::Int(*id),
                        Value::Int(*grp),
                        Value::Float(*amount),
                    ])
                })
                .collect(),
        )
        .unwrap();
    catalog
}

/// Executes a plan and returns its canonical (sorted, stringified) rows.
fn run(catalog: &Catalog, plan: &RelExpr) -> Vec<String> {
    let registry = FunctionRegistry::new();
    let executor = Executor::new(
        std::sync::Arc::new(catalog.clone()),
        std::sync::Arc::new(registry),
    );
    executor
        .execute(plan)
        .unwrap_or_else(|e| panic!("execution failed: {e}\n{}", explain(plan)))
        .canonical()
}

/// Applies the paper's rule set and checks result equivalence.
fn assert_rules_preserve_results(catalog: &Catalog, plan: &RelExpr) {
    let registry = FunctionRegistry::new();
    let provider = CatalogProvider::new(catalog, &registry);
    let rewritten = FixpointEngine::with_max_iterations(50)
        .run(plan, &RuleSet::default_pipeline(), &provider)
        .expect("fixpoint within budget")
        .plan;
    let before = run(catalog, plan);
    let after = run(catalog, &rewritten);
    assert_eq!(
        before,
        after,
        "rule application changed the result\nbefore:\n{}\nafter:\n{}",
        explain(plan),
        explain(&rewritten)
    );
}

/// R2 / R1 / K4: declarations and assignments modelled with Apply-cross / Apply-Merge
/// over `Single` evaluate to the same constants after simplification.
#[test]
fn declaration_and_assignment_chain_is_preserved() {
    check_property("declaration_and_assignment_chain_is_preserved", |rng| {
        let init = rng.gen_range_i64(-1000, 1000);
        let addend = rng.gen_range_i64(-1000, 1000);
        let rows = arb_rows(rng, 0, 20);
        let catalog = catalog_with_accounts(&rows);
        // S A× Π_{init as x}(S)  AM  Π_{x + addend as x}(S)   — then joined against the
        // table so the result depends on the data too.
        let ctx = PlanBuilder::single()
            .apply(
                PlanBuilder::single().project(vec![(E::literal(init), Some("x"))]),
                ApplyKind::Cross,
                vec![],
            )
            .apply_merge(
                PlanBuilder::single().project(vec![(
                    E::binary(
                        udf_decorrelation::algebra::BinaryOp::Add,
                        E::column("x"),
                        E::literal(addend),
                    ),
                    Some("x"),
                )]),
                vec![],
            );
        let plan = PlanBuilder::scan("accounts")
            .apply(ctx, ApplyKind::Cross, vec![])
            .project(vec![(E::column("id"), None), (E::column("x"), None)])
            .build();
        assert_rules_preserve_results(&catalog, &plan);
    });
}

/// R8: conditional Apply-Merge (if-then-else assignment) equals its CASE rewriting for
/// every predicate threshold and dataset.
#[test]
fn conditional_apply_merge_matches_case() {
    check_property("conditional_apply_merge_matches_case", |rng| {
        let threshold = rng.gen_range_f64(-100.0, 100.0);
        let rows = arb_rows(rng, 1, 25);
        let catalog = catalog_with_accounts(&rows);
        let ctx = PlanBuilder::scan("accounts")
            .apply(
                PlanBuilder::single().project(vec![(E::literal("unset"), Some("label"))]),
                ApplyKind::Cross,
                vec![],
            )
            .conditional_apply_merge(
                E::gt(E::column("amount"), E::literal(threshold)),
                PlanBuilder::single().project(vec![(E::literal("high"), Some("label"))]),
                PlanBuilder::single().project(vec![(E::literal("low"), Some("label"))]),
                vec![],
            );
        let plan = PlanBuilder::from_plan(ctx.build())
            .project(vec![(E::column("id"), None), (E::column("label"), None)])
            .build();
        assert_rules_preserve_results(&catalog, &plan);
    });
}

/// The correlated-scalar-aggregate decorrelation (Apply over SUM with an equality
/// correlation) returns the same totals as correlated evaluation, including NULL for
/// groups with no matching rows.
#[test]
fn scalar_aggregate_decorrelation_is_exact() {
    check_property("scalar_aggregate_decorrelation_is_exact", |rng| {
        let rows: Vec<(i64, i64, f64)> = {
            let n = rng.gen_range_usize(0, 30);
            (0..n)
                .map(|_| {
                    (
                        rng.gen_range_i64(0, 30),
                        rng.gen_range_i64(0, 6),
                        rng.gen_range_f64(-100.0, 100.0),
                    )
                })
                .collect()
        };
        let groups: Vec<i64> = {
            let n = rng.gen_range_usize(1, 8);
            (0..n).map(|_| rng.gen_range_i64(0, 6)).collect()
        };
        let mut catalog = catalog_with_accounts(&rows);
        catalog
            .create_table("groups", Schema::new(vec![Column::new("g", DataType::Int)]))
            .unwrap();
        catalog
            .insert_rows(
                "groups",
                groups
                    .iter()
                    .map(|g| Row::new(vec![Value::Int(*g)]))
                    .collect(),
            )
            .unwrap();
        // groups A× (G_sum(amount)(σ_{grp = g}(accounts)))
        let inner = PlanBuilder::scan("accounts")
            .select(E::eq(E::column("grp"), E::qualified_column("groups", "g")))
            .aggregate(
                vec![],
                vec![AggCall::new(
                    AggFunc::Sum,
                    vec![E::column("amount")],
                    "total",
                )],
            );
        let plan = PlanBuilder::scan("groups")
            .apply(inner, ApplyKind::Cross, vec![])
            .project(vec![
                (E::qualified_column("groups", "g"), None),
                (E::column("total"), None),
            ])
            .build();
        assert_rules_preserve_results(&catalog, &plan);
    });
}

/// K1/K2: an uncorrelated Apply is exactly a join.
#[test]
fn uncorrelated_apply_equals_join() {
    check_property("uncorrelated_apply_equals_join", |rng| {
        let limit = rng.gen_range_f64(-50.0, 50.0);
        let rows = arb_rows(rng, 0, 20);
        let catalog = catalog_with_accounts(&rows);
        let inner = PlanBuilder::scan_as("accounts", "b")
            .select(E::gt(E::qualified_column("b", "amount"), E::literal(limit)));
        let plan = PlanBuilder::scan_as("accounts", "a")
            .apply(inner, ApplyKind::LeftSemi, vec![])
            .project(vec![(E::qualified_column("a", "id"), None)])
            .build();
        assert_rules_preserve_results(&catalog, &plan);
    });
}

/// Rule application always terminates and removes every Apply operator for the paper's
/// Example 1 query shape (a fixed, non-random sanity check that the fixpoint loop does
/// not oscillate).
#[test]
fn fixpoint_terminates_and_fully_decorrelates_example1_shape() {
    let catalog = catalog_with_accounts(&[(1, 1, 10.0), (2, 1, -5.0), (3, 2, 7.5)]);
    let registry = FunctionRegistry::new();
    let provider = CatalogProvider::new(&catalog, &registry);
    let inner = PlanBuilder::scan_as("accounts", "inner_side")
        .select(E::eq(
            E::qualified_column("inner_side", "grp"),
            E::qualified_column("outer_side", "grp"),
        ))
        .aggregate(
            vec![],
            vec![AggCall::new(
                AggFunc::Sum,
                vec![E::column("amount")],
                "total",
            )],
        );
    let plan = PlanBuilder::scan_as("accounts", "outer_side")
        .apply(inner, ApplyKind::Cross, vec![])
        .project(vec![
            (E::qualified_column("outer_side", "id"), None),
            (E::column("total"), None),
        ])
        .build();
    let outcome = FixpointEngine::with_max_iterations(50)
        .run(&plan, &RuleSet::default_pipeline(), &provider)
        .expect("fixpoint within budget");
    let rewritten = &outcome.plan;
    assert!(!rewritten.contains_apply(), "{}", explain(rewritten));
    assert!(outcome.reached_fixpoint);
    assert!(outcome.fire_count("decorrelate-scalar-aggregate") >= 1);
    assert_eq!(run(&catalog, &plan), run(&catalog, rewritten));
}
