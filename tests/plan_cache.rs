//! Integration tests of the optimizer's plan cache through the engine facade:
//! hit/miss accounting, LRU eviction under capacity pressure, invalidation on UDF
//! redefinition and DDL, EXPLAIN surfacing, and a seeded property test proving that
//! random interleavings of `query` and `register_udf` never serve a stale plan.

use udf_decorrelation::common::SmallRng;
use udf_decorrelation::engine::{Database, QueryOptions};
use udf_decorrelation::prelude::Value;

/// A database with `t(x int, grp int)` holding five rows and the scalar UDF
/// `shift(x) = x * mult + add`.
fn db_with_shift(mult: i64, add: i64) -> Database {
    let mut db = Database::new();
    db.execute("create table t(x int, grp int)").unwrap();
    db.execute("insert into t values (1, 0), (2, 0), (3, 1), (4, 1), (5, 2)")
        .unwrap();
    register_shift(&mut db, mult, add);
    db
}

fn register_shift(db: &mut Database, mult: i64, add: i64) {
    db.register_function(&format!(
        "create function shift(int v) returns int as begin return v * {mult} + {add}; end"
    ))
    .unwrap();
}

const SHIFT_QUERY: &str = "select x, shift(x) as y from t";

fn shifted(result: &udf_decorrelation::engine::QueryResult) -> Vec<(i64, i64)> {
    let xs = result.column("x").unwrap();
    let ys = result.column("y").unwrap();
    let mut out: Vec<(i64, i64)> = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| match (x, y) {
            (Value::Int(x), Value::Int(y)) => (*x, *y),
            other => panic!("unexpected values {other:?}"),
        })
        .collect();
    out.sort();
    out
}

#[test]
fn repeated_queries_hit_the_cache_and_agree_with_fresh_runs() {
    let db = db_with_shift(2, 1);
    let cold = db.query(SHIFT_QUERY).unwrap();
    let cold_activity = cold.rewrite_report.cache.expect("cache attached");
    assert!(!cold_activity.hit);
    for i in 0..3 {
        let warm = db.query(SHIFT_QUERY).unwrap();
        let activity = warm.rewrite_report.cache.expect("cache attached");
        assert!(activity.hit, "repeat {i} must hit");
        assert_eq!(shifted(&warm), shifted(&cold));
        assert_eq!(warm.used_decorrelated_plan, cold.used_decorrelated_plan);
        // The warm report replaces the pipeline traces with one plan-cache trace.
        let names: Vec<&str> = warm
            .rewrite_report
            .passes
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(names, vec!["plan-cache"]);
        assert!(warm
            .rewrite_notes
            .iter()
            .any(|n| n.contains("served from plan cache")));
    }
    let stats = db.plan_cache_stats();
    assert_eq!(stats.hits, 3);
    assert!(stats.misses >= 1);
    assert_eq!(stats.entries, 1);
}

/// Satellite regression: changing the worker-pool size after warm cache entries must
/// miss the cache — the pipeline fingerprint folds in the parallelism the strategy
/// choice was costed for, so a plan optimized for one pool size is never served to
/// another.
#[test]
fn set_parallelism_invalidates_warm_cache_entries() {
    let mut db = db_with_shift(2, 1);
    let cold = db.query(SHIFT_QUERY).unwrap();
    assert!(!cold.rewrite_report.cache.expect("cache attached").hit);
    let warm = db.query(SHIFT_QUERY).unwrap();
    assert!(warm.rewrite_report.cache.expect("cache attached").hit);
    let misses_before = db.plan_cache_stats().misses;

    // A new pool size must not be served the strategy costed for the old one.
    db.set_parallelism(4);
    let resized = db.query(SHIFT_QUERY).unwrap();
    assert!(
        !resized.rewrite_report.cache.expect("cache attached").hit,
        "a resized pool must miss the warm cache"
    );
    assert_eq!(db.plan_cache_stats().misses, misses_before + 1);
    assert_eq!(shifted(&resized), shifted(&cold));

    // The new pool size warms its own entry …
    let rewarm = db.query(SHIFT_QUERY).unwrap();
    assert!(rewarm.rewrite_report.cache.expect("cache attached").hit);

    // … and switching back is again a distinct entry (cached from the first runs).
    db.set_parallelism(1);
    let back = db.query(SHIFT_QUERY).unwrap();
    assert!(
        back.rewrite_report.cache.expect("cache attached").hit,
        "the serial entry cached earlier must still be servable"
    );
    assert_eq!(shifted(&back), shifted(&cold));
}

#[test]
fn strategies_use_distinct_cache_entries() {
    let db = db_with_shift(3, 0);
    let auto = db.query(SHIFT_QUERY).unwrap();
    // A different strategy is a different pipeline: it must not serve Auto's entry.
    let iterative = db
        .query_with(SHIFT_QUERY, &QueryOptions::iterative())
        .unwrap();
    assert!(!iterative.rewrite_report.cache.expect("cache attached").hit);
    assert_eq!(shifted(&auto), shifted(&iterative));
    let warm_iterative = db
        .query_with(SHIFT_QUERY, &QueryOptions::iterative())
        .unwrap();
    assert!(
        warm_iterative
            .rewrite_report
            .cache
            .expect("cache attached")
            .hit
    );
    assert_eq!(db.plan_cache_stats().entries, 2);
}

#[test]
fn redefined_udf_body_changes_the_cached_outcome() {
    // The satellite regression: after CREATE OR REPLACE, the registry generation moves
    // and a repeated query must re-optimize against the new body — never serve the plan
    // built from the old one.
    let mut db = db_with_shift(1, 1);
    let before = db.query(SHIFT_QUERY).unwrap();
    assert_eq!(
        shifted(&before),
        vec![(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]
    );
    let warm = db.query(SHIFT_QUERY).unwrap();
    assert!(warm.rewrite_report.cache.expect("cache attached").hit);

    let generation_before = db.registry().generation();
    register_shift(&mut db, 1, 100);
    assert!(
        db.registry().generation() > generation_before,
        "register_udf must bump the registry generation"
    );

    let after = db.query(SHIFT_QUERY).unwrap();
    let activity = after.rewrite_report.cache.expect("cache attached");
    assert!(
        !activity.hit,
        "redefinition must invalidate the cached plan"
    );
    assert_eq!(
        shifted(&after),
        vec![(1, 101), (2, 102), (3, 103), (4, 104), (5, 105)],
        "the outcome must reflect the redefined body"
    );
    // And the new entry serves the new body from then on.
    let warm_after = db.query(SHIFT_QUERY).unwrap();
    assert!(warm_after.rewrite_report.cache.expect("cache attached").hit);
    assert_eq!(shifted(&warm_after), shifted(&after));
}

#[test]
fn ddl_invalidates_cached_plans() {
    let mut db = db_with_shift(2, 0);
    db.query(SHIFT_QUERY).unwrap();
    assert!(
        db.query(SHIFT_QUERY)
            .unwrap()
            .rewrite_report
            .cache
            .unwrap()
            .hit
    );
    db.execute("create index on t(grp)").unwrap();
    let after_ddl = db.query(SHIFT_QUERY).unwrap();
    assert!(
        !after_ddl.rewrite_report.cache.unwrap().hit,
        "DDL must move the catalog generation and miss"
    );
}

#[test]
fn lru_eviction_under_capacity_pressure() {
    let mut db = db_with_shift(2, 0);
    db.set_plan_cache_capacity(2);
    let queries = [
        "select x from t where x <= 1",
        "select x from t where x <= 2",
        "select x from t where x <= 3",
    ];
    for sql in &queries {
        db.query(sql).unwrap();
    }
    let stats = db.plan_cache_stats();
    assert_eq!(stats.entries, 2, "{stats:?}");
    assert!(stats.evictions >= 1, "{stats:?}");
    // The oldest entry was evicted; the two youngest are resident.
    assert!(
        !db.query(queries[0])
            .unwrap()
            .rewrite_report
            .cache
            .unwrap()
            .hit
    );
    assert!(
        db.query(queries[2])
            .unwrap()
            .rewrite_report
            .cache
            .unwrap()
            .hit
    );
}

#[test]
fn explain_surfaces_cache_statistics() {
    let db = db_with_shift(2, 0);
    let first = db.explain(SHIFT_QUERY).unwrap();
    assert!(first.contains("plan cache: miss"), "{first}");
    let second = db.explain(SHIFT_QUERY).unwrap();
    assert!(second.contains("plan cache: hit"), "{second}");
    assert!(second.contains("plan-cache"), "{second}");
    assert!(second.contains("hits="), "{second}");
}

#[test]
fn cloned_database_starts_with_a_cold_cache() {
    let db = db_with_shift(2, 0);
    db.query(SHIFT_QUERY).unwrap();
    assert!(
        db.query(SHIFT_QUERY)
            .unwrap()
            .rewrite_report
            .cache
            .unwrap()
            .hit
    );
    let clone = db.clone();
    assert_eq!(clone.plan_cache_stats().entries, 0);
    let fresh = clone.query(SHIFT_QUERY).unwrap();
    assert!(
        !fresh.rewrite_report.cache.unwrap().hit,
        "a clone mutates independently and must not share cache entries"
    );
}

/// Seeded property test (in-repo deterministic harness, like `tests/rule_properties`):
/// for random interleavings of `query` and `register_udf` — over several query shapes
/// and a deliberately tiny cache so eviction, hits and invalidation all occur — every
/// query result must match the *current* UDF definition. A single stale served plan
/// would surface as a wrong `y` column.
#[test]
fn random_query_redefine_interleavings_never_serve_stale_plans() {
    const CASES: u64 = 24;
    const STEPS: usize = 40;
    for case in 0..CASES {
        let seed = 0xCAC4_E000 + case;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut db = db_with_shift(1, 0);
        db.set_plan_cache_capacity(2);
        let (mut mult, mut add) = (1i64, 0i64);
        for step in 0..STEPS {
            if rng.gen_range_usize(0, 4) == 0 {
                mult = rng.gen_range_i64(1, 5);
                add = rng.gen_range_i64(-10, 10);
                register_shift(&mut db, mult, add);
                continue;
            }
            // Three query shapes so the tiny cache keeps churning.
            let limit = rng.gen_range_i64(1, 4) + 2;
            let sql = format!("select x, shift(x) as y from t where x <= {limit}");
            let result = db
                .query(&sql)
                .unwrap_or_else(|e| panic!("seed {seed:#x} step {step}: query failed: {e}"));
            let expected: Vec<(i64, i64)> = (1..=5)
                .filter(|x| *x <= limit)
                .map(|x| (x, x * mult + add))
                .collect();
            assert_eq!(
                shifted(&result),
                expected,
                "seed {seed:#x} step {step}: stale plan served for mult={mult} add={add}"
            );
        }
        let stats = db.plan_cache_stats();
        assert!(
            stats.hits > 0,
            "seed {seed:#x}: the interleaving never exercised the cache: {stats:?}"
        );
    }
}
