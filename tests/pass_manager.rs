//! Tests of the optimizer's instrumented PassManager: per-rule fire counts, fixpoint
//! termination, per-pass timings in `EXPLAIN`/`rewrite_report`, and the rule-firing
//! budget guard that turns a cyclic rule set into an error instead of a hang.

use udf_decorrelation::algebra::{RelExpr, SchemaProvider};
use udf_decorrelation::common::{Result, SmallRng};
use udf_decorrelation::engine::QueryOptions;
use udf_decorrelation::optimizer::{
    OptimizerPass, PassContext, PassEffect, PassManager, PassManagerOptions,
};
use udf_decorrelation::rewrite::rules::{Rule, RuleSet};
use udf_decorrelation::tpch::{experiment2, experiment3, generate, TpchConfig};

// ----------------------------------------------------------- instrumentation coverage

/// The Example-2-style rewrite (service_level over TPC-H customers): the rewrite report
/// must attribute the paper's rules to the apply-removal pass with exact fire counts,
/// and the fixpoint must terminate by convergence, not by the iteration limit.
#[test]
fn rule_fire_counts_on_service_level_workload() {
    let workload = experiment2();
    let mut db = generate(&TpchConfig::tiny()).unwrap();
    workload.install(&mut db).unwrap();
    let result = db
        .query_with(&(workload.query)(20), &QueryOptions::decorrelated())
        .unwrap();
    let report = &result.rewrite_report;

    let removal = report
        .pass("apply-removal")
        .expect("apply-removal pass traced");
    assert_eq!(
        removal.reached_fixpoint,
        Some(true),
        "fixpoint did not converge"
    );
    assert!(
        removal.fixpoint_iterations.unwrap() >= 2,
        "a real rewrite takes multiple fixpoint passes"
    );
    // The service-level rewrite has one UDF invocation (one Apply bind), one scalar
    // aggregate, and a nested if/else-if/else — i.e. two conditional merges.
    for (rule, expected) in [
        ("R9-apply-bind-removal", 1),
        ("decorrelate-scalar-aggregate", 1),
        ("R8-conditional-merge-to-case", 2),
    ] {
        assert_eq!(
            removal.rule_fires.get(rule).copied().unwrap_or(0),
            expected,
            "expected {rule} to fire exactly {expected}×; fired: {:?}",
            removal.rule_fires
        );
    }
    // Fire counts aggregate across passes and match the flat applied_rules list.
    let total: u64 = report.rule_fire_counts().values().sum();
    assert_eq!(total, result.applied_rules.len() as u64);
}

/// The Example-5-style cursor-loop rewrite (experiment 3) goes through the
/// auxiliary-aggregate path and still terminates with full instrumentation.
#[test]
fn cursor_loop_rewrite_terminates_with_instrumentation() {
    let workload = experiment3();
    let mut db = generate(&TpchConfig::tiny()).unwrap();
    workload.install(&mut db).unwrap();
    let options = QueryOptions {
        // Snapshots are off on the hot path; opt in to inspect them.
        capture_snapshots: true,
        ..QueryOptions::decorrelated()
    };
    let result = db.query_with(&(workload.query)(8), &options).unwrap();
    let report = &result.rewrite_report;

    let merge = report.pass("algebraize-merge").expect("merge pass traced");
    assert!(
        merge
            .notes
            .iter()
            .any(|n| n.contains("auxiliary aggregate")),
        "cursor loop must synthesise an auxiliary aggregate; notes: {:?}",
        merge.notes
    );
    let removal = report.pass("apply-removal").unwrap();
    assert_eq!(removal.reached_fixpoint, Some(true));
    assert!(removal.total_rule_fires() >= 3, "{:?}", removal.rule_fires);
    assert!(
        removal
            .rule_fires
            .contains_key("decorrelate-scalar-aggregate"),
        "{:?}",
        removal.rule_fires
    );
    // Snapshots bracket the pass: the Apply-laden plan in, the flat plan out.
    let before = removal.plan_before.as_deref().unwrap();
    let after = removal.plan_after.as_deref().unwrap();
    assert!(before.contains("Apply"), "before:\n{before}");
    assert!(!after.contains("Apply"), "after:\n{after}");
}

/// Acceptance: `EXPLAIN` and `rewrite_report` expose per-rule fire counts and per-pass
/// timings for a decorrelated TPC-H workload query.
#[test]
fn explain_shows_per_pass_timings_and_fire_counts() {
    let workload = experiment2();
    let mut db = generate(&TpchConfig::tiny()).unwrap();
    workload.install(&mut db).unwrap();
    let sql = (workload.query)(20);

    let explain = db.explain(&sql).unwrap();
    assert!(explain.contains("== optimizer passes =="), "{explain}");
    for pass in [
        "normalize",
        "algebraize-merge",
        "apply-removal",
        "cleanup",
        "strategy-choice",
    ] {
        assert!(explain.contains(pass), "missing pass {pass}:\n{explain}");
    }
    assert!(explain.contains(" ms "), "no timings rendered:\n{explain}");
    assert!(
        explain.contains("rule fire counts:") && explain.contains("R9-apply-bind-removal ×1"),
        "no per-rule fire counts rendered:\n{explain}"
    );

    // The same trace rides on every query result.
    let result = db.query(&sql).unwrap();
    assert_eq!(result.rewrite_report.passes.len(), 5);
    assert!(result.rewrite_report.total_rule_fires() > 0);
}

/// The iterative strategy runs the normalisation pipeline only — the trace proves no
/// rewrite work happened.
#[test]
fn iterative_strategy_traces_normalization_only() {
    let workload = experiment2();
    let mut db = generate(&TpchConfig::tiny()).unwrap();
    workload.install(&mut db).unwrap();
    let result = db
        .query_with(&(workload.query)(10), &QueryOptions::iterative())
        .unwrap();
    let names: Vec<&str> = result
        .rewrite_report
        .passes
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    assert_eq!(names, vec!["normalize"]);
    assert!(result.rewrite_report.pass("apply-removal").is_none());
}

// ------------------------------------------------------------------ budget guard

/// A deliberately cyclic rule: endlessly swaps the inputs of a cross join, so every
/// bottom-up pass changes the plan and the fixpoint never converges.
fn cyclic_swap(plan: &RelExpr, _provider: &dyn SchemaProvider) -> Option<RelExpr> {
    let RelExpr::Join {
        left,
        right,
        kind,
        condition: None,
    } = plan
    else {
        return None;
    };
    if left == right {
        return None;
    }
    Some(RelExpr::Join {
        left: right.clone(),
        right: left.clone(),
        kind: *kind,
        condition: None,
    })
}

fn cyclic_ruleset() -> RuleSet {
    RuleSet {
        rules: vec![Rule {
            name: "cyclic-swap",
            apply: cyclic_swap,
        }],
    }
}

/// A pass driving the cyclic rule set through the context's budgeted fixpoint engine —
/// exactly how the real passes consume their budget.
struct CyclicPass;

impl OptimizerPass for CyclicPass {
    fn name(&self) -> &'static str {
        "cyclic-for-test"
    }

    fn run(&self, plan: &RelExpr, ctx: &mut PassContext) -> Result<PassEffect> {
        let outcome = ctx
            .fixpoint_engine()
            .run(plan, &cyclic_ruleset(), ctx.provider)?;
        ctx.charge_rule_firings(outcome.total_fires());
        Ok(PassEffect::unchanged(outcome.plan))
    }
}

/// Property: whatever the (deterministic pseudo-random) plan shape and budget, the
/// PassManager aborts a cyclic rule set with a budget error instead of looping forever.
#[test]
fn budget_guard_fires_on_cyclic_ruleset() {
    let registry = udf_decorrelation::udf::FunctionRegistry::new();
    let provider = udf_decorrelation::algebra::EmptyProvider;
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0xB0D6E7 + case);
        // A left-deep tree of cross joins over distinct scans: every join node keeps
        // swapping, so firings grow without bound until the budget stops them.
        let joins = rng.gen_range_usize(1, 6);
        let mut plan = RelExpr::scan("t0");
        for i in 1..=joins {
            plan = RelExpr::Join {
                left: Box::new(plan),
                right: Box::new(RelExpr::scan(format!("t{i}"))),
                kind: udf_decorrelation::algebra::JoinKind::Cross,
                condition: None,
            };
        }
        let budget = rng.gen_range_i64(10, 500) as u64;
        let manager = PassManager::new()
            .with_pass(CyclicPass)
            .with_options(PassManagerOptions {
                // Without the firing budget this would spin for a very long time.
                max_fixpoint_iterations: usize::MAX,
                rule_fire_budget: budget,
                ..PassManagerOptions::default()
            });
        let err = manager
            .optimize(&plan, &registry, &provider, None)
            .expect_err("cyclic rule set must exhaust the budget");
        let message = err.to_string();
        assert!(
            message.contains("budget exhausted") && message.contains("cyclic-for-test"),
            "unexpected error for case {case} (budget {budget}): {message}"
        );
    }
}

/// The same guard protects the real pipeline: a healthy rule set stays far below the
/// default budget, and an artificially tiny budget trips on a real workload rewrite.
#[test]
fn real_pipeline_respects_budget() {
    let workload = experiment2();
    let mut db = generate(&TpchConfig::tiny()).unwrap();
    workload.install(&mut db).unwrap();
    let sql = (workload.query)(10);

    // Healthy: the full rewrite fits comfortably in the default budget.
    let ok = db.query_with(&sql, &QueryOptions::decorrelated()).unwrap();
    assert!(ok.rewrite_report.total_rule_fires() < 1_000);

    // Pathological budget: the pipeline errors out instead of silently degrading.
    let plan = udf_decorrelation::parser::parse_and_plan(&sql).unwrap();
    let catalog = db.catalog();
    let registry = db.registry();
    let provider = udf_decorrelation::exec::CatalogProvider::new(&catalog, &registry);
    let tiny = PassManager::rewrite_pipeline().with_options(PassManagerOptions {
        rule_fire_budget: 2,
        ..PassManagerOptions::default()
    });
    let err = tiny
        .optimize(&plan, &registry, &provider, Some(catalog.as_ref()))
        .expect_err("a 2-firing budget cannot fit the service-level rewrite");
    assert!(err.to_string().contains("budget exhausted"), "{err}");
}

// ------------------------------------------------------------------ plan cache seam

/// A PassManager with an attached plan cache skips the pipeline on repeats: the warm
/// report carries a single synthetic `plan-cache` trace plus the cache counters, while
/// the outcome (plan, strategy, rules) is identical to the cold run.
#[test]
fn attached_plan_cache_memoizes_the_pipeline() {
    use std::sync::Arc;
    use udf_decorrelation::optimizer::PlanCache;

    let workload = experiment2();
    let mut db = generate(&TpchConfig::tiny()).unwrap();
    workload.install(&mut db).unwrap();
    let plan = udf_decorrelation::parser::parse_and_plan(&(workload.query)(10)).unwrap();
    let catalog = db.catalog();
    let registry = db.registry();
    let provider = udf_decorrelation::exec::CatalogProvider::new(&catalog, &registry);

    let cache = Arc::new(PlanCache::with_capacity(8));
    let manager = PassManager::decorrelation_pipeline().with_plan_cache(Arc::clone(&cache));
    let cold = manager
        .optimize(&plan, &registry, &provider, Some(catalog.as_ref()))
        .unwrap();
    assert!(!cold.report.cache.expect("activity recorded").hit);
    assert_eq!(cold.report.passes.len(), 5);

    let warm = manager
        .optimize(&plan, &registry, &provider, Some(catalog.as_ref()))
        .unwrap();
    let activity = warm.report.cache.expect("activity recorded");
    assert!(activity.hit);
    assert_eq!(warm.report.passes.len(), 1);
    assert_eq!(warm.report.passes[0].name, "plan-cache");
    assert_eq!(warm.plan, cold.plan);
    assert_eq!(warm.applied_rules, cold.applied_rules);
    assert_eq!(warm.used_decorrelated_plan, cold.used_decorrelated_plan);
    assert_eq!(activity.stats.hits, 1);

    // A pipeline with different options has a different fingerprint and must not
    // serve the entry, even through the same shared cache.
    let forced = PassManager::decorrelation_pipeline()
        .with_mode(udf_decorrelation::optimizer::OptimizeMode::ForceDecorrelated)
        .with_plan_cache(Arc::clone(&cache));
    assert_ne!(
        forced.pipeline_fingerprint(),
        manager.pipeline_fingerprint()
    );
    let other = forced
        .optimize(&plan, &registry, &provider, Some(catalog.as_ref()))
        .unwrap();
    assert!(!other.report.cache.expect("activity recorded").hit);
}
