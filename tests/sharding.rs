//! Sharded table storage, end to end: the scan/filter/join/aggregate/UDF surface
//! must be **byte-identical** across shard counts and worker-pool sizes (cold and
//! warm, and while a concurrent writer appends to an unrelated table), shard
//! pruning must surface in `EXPLAIN ANALYZE`, `ANALYZE` must only re-sample dirty
//! shards, and the UDF invocation counters must stay exact under racing workers.

use std::thread;

use udf_decorrelation::common::{Row, SmallRng, Value};
use udf_decorrelation::engine::{Engine, QueryOptions, Session};

const SERVICE_LEVEL_SQL: &str = "create function service_level(int ckey) returns varchar(10) as \
     begin \
       float totalbusiness; string level; \
       select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
       if (totalbusiness > 200000) level = 'Platinum'; \
       else if (totalbusiness > 50000) level = 'Gold'; \
       else level = 'Regular'; \
       return level; \
     end";

const CUSTOMERS: i64 = 50;
const ORDERS_PER_CUSTOMER: i64 = 40;

/// Seeded customer/orders data plus an `events` table only the racing writer
/// touches. Identical for every (shard count, parallelism) configuration.
fn build_engine(shards: usize, parallelism: usize) -> Engine {
    let engine = Engine::builder()
        .shard_count(shards)
        .parallelism(parallelism)
        .build();
    let admin = engine.session();
    admin
        .execute(
            "create table customer(custkey int not null, name varchar(25)); \
             create table orders(orderkey int not null, custkey int, totalprice float); \
             create table events(id int not null, amount float)",
        )
        .unwrap();
    let customers: Vec<Row> = (1..=CUSTOMERS)
        .map(|i| Row::new(vec![Value::Int(i), Value::str(format!("Customer#{i}"))]))
        .collect();
    engine.load_rows("customer", customers).unwrap();
    let mut orders = vec![];
    let mut orderkey = 0i64;
    for i in 1..=CUSTOMERS {
        for j in 0..ORDERS_PER_CUSTOMER {
            orderkey += 1;
            orders.push(Row::new(vec![
                Value::Int(orderkey),
                Value::Int(i),
                Value::Float(500.0 * i as f64 + 13.0 * j as f64),
            ]));
        }
    }
    engine.load_rows("orders", orders).unwrap();
    admin.register_function(SERVICE_LEVEL_SQL).unwrap();
    engine
}

/// One pass of the seeded query battery; returns every result verbatim (no
/// sorting — row *order* is part of the byte-identity contract).
fn run_battery(session: &Session, seed: u64) -> Vec<String> {
    let mut log = vec![];
    let mut push = |sql: &str| {
        let result = session.query(sql).unwrap();
        let rows: Vec<String> = result.rows.iter().map(|r| format!("{r:?}")).collect();
        log.push(format!("{sql} => {}", rows.join("|")));
    };
    push("select custkey, name from customer");
    push("select orderkey, totalprice from orders where custkey = 7");
    push("select orderkey from orders where totalprice >= 5000 and totalprice <= 9000");
    push("select custkey, sum(totalprice) as total from orders group by custkey");
    push("select o.orderkey from customer c join orders o on c.custkey = o.custkey where o.totalprice > 20000");
    push("select custkey, service_level(custkey) as level from customer");
    // Seeded random range scans: the shard-pruning fast path must never change
    // which rows (or in what order) a filter returns.
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..8 {
        let lo = rng.gen_range_i64(1, 1500);
        let hi = lo + rng.gen_range_i64(1, 500);
        push(&format!(
            "select orderkey, custkey from orders where orderkey >= {lo} and orderkey <= {hi}"
        ));
    }
    log
}

/// The tentpole property: results are byte-identical across shard counts 1/2/4/8
/// and parallelism 1/4, cold and warm, analyzed or not — including while another
/// session races inserts into an unrelated table.
#[test]
fn results_are_byte_identical_across_shard_counts_and_parallelism() {
    let reference_engine = build_engine(1, 1);
    let reference_cold = run_battery(&reference_engine.session(), 42);
    let reference_warm = run_battery(&reference_engine.session(), 42);
    assert_eq!(
        reference_cold, reference_warm,
        "warm caches changed a result on the reference configuration"
    );
    for shards in [1usize, 2, 4, 8] {
        for parallelism in [1usize, 4] {
            let engine = build_engine(shards, parallelism);
            // Racing inserter: concurrent COW appends to `events` clone single
            // shards while the battery scans customer/orders snapshots.
            let writer = engine.session();
            let inserter = thread::spawn(move || {
                for i in 0..200 {
                    writer
                        .execute(&format!("insert into events values ({i}, {i}.5)"))
                        .unwrap();
                    if i == 100 {
                        writer.execute("analyze events").unwrap();
                    }
                }
            });
            let cold = run_battery(&engine.session(), 42);
            inserter.join().unwrap();
            assert_eq!(
                reference_cold, cold,
                "cold run diverged at shards={shards} parallelism={parallelism}"
            );
            // ANALYZE caches per-shard summaries and enables pruning; the rows a
            // query returns must not move by a byte.
            engine.session().execute("analyze orders").unwrap();
            let warm = run_battery(&engine.session(), 42);
            assert_eq!(
                reference_cold, warm,
                "analyzed warm run diverged at shards={shards} parallelism={parallelism}"
            );
        }
    }
}

/// Extracts the `shards-pruned=<n>` counter from an `EXPLAIN ANALYZE` report.
fn shards_pruned(report: &str) -> u64 {
    let tail = report
        .split("shards-pruned=")
        .nth(1)
        .expect("explain analyze must report shards-pruned");
    tail.split_whitespace().next().unwrap().parse().unwrap()
}

/// A selective range predicate over an ANALYZEd sharded table skips whole shards,
/// and `EXPLAIN ANALYZE` says how many.
#[test]
fn explain_analyze_reports_pruned_shards() {
    let engine = build_engine(8, 1);
    let session = engine.session();
    let sql = "select orderkey from orders where orderkey <= 100";
    // Without cached summaries nothing can prove a shard empty of matches.
    let cold = session.explain_analyze(sql).unwrap();
    assert_eq!(shards_pruned(&cold), 0, "un-analyzed shards must not prune");
    session.execute("analyze orders").unwrap();
    // Orders were bulk-loaded in orderkey order, so `orderkey <= 100` lives in the
    // first shard and the other seven prune on their cached min/max.
    let analyzed = session.explain_analyze(sql).unwrap();
    let pruned = shards_pruned(&analyzed);
    assert!(pruned > 0, "expected pruned shards, report:\n{analyzed}");
    let full = session
        .explain_analyze("select orderkey from orders where orderkey >= 0")
        .unwrap();
    assert_eq!(
        shards_pruned(&full),
        0,
        "a predicate matching every shard must prune nothing"
    );
}

/// `ANALYZE` is incremental: re-running it only re-samples shards that changed
/// since the last run, as counted by the per-table recompute counter.
#[test]
fn analyze_resamples_only_dirty_shards() {
    let engine = build_engine(4, 1);
    let session = engine.session();
    session
        .execute("create table t(k int not null, v float)")
        .unwrap();
    let rows: Vec<Row> = (0..1000i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Float(i as f64)]))
        .collect();
    engine.load_rows("t", rows).unwrap();
    session.execute("analyze t").unwrap();
    let after_first = engine.catalog().table("t").unwrap().shard_stat_recomputes();
    assert_eq!(after_first, 4, "first ANALYZE samples every shard once");
    session.execute("analyze t").unwrap();
    let after_noop = engine.catalog().table("t").unwrap().shard_stat_recomputes();
    assert_eq!(after_noop, 4, "a no-op ANALYZE must not re-sample anything");
    // One appended row dirties exactly one shard.
    session
        .execute("insert into t values (1000, 1000.0)")
        .unwrap();
    session.execute("analyze t").unwrap();
    let after_insert = engine.catalog().table("t").unwrap().shard_stat_recomputes();
    assert_eq!(after_insert, 5, "only the dirty shard re-samples");
}

/// The regression for Apply-path counter inflation: at parallelism 8 racing
/// workers may re-evaluate a tuple whose dedup reservation they lost, but the
/// duplicate must book as a hit — `udf_invocations` equals the number of distinct
/// argument tuples, every run.
#[test]
fn udf_invocation_counters_are_stable_under_racing_workers() {
    let sql = "select orderkey, service_level(custkey) as level from orders";
    let serial = build_engine(4, 1)
        .session()
        .query_with(sql, &QueryOptions::iterative())
        .unwrap();
    assert_eq!(
        serial.exec_stats.udf_invocations, CUSTOMERS as u64,
        "serial baseline: one evaluation per distinct custkey"
    );
    for round in 0..3 {
        let engine = build_engine(4, 8);
        let result = engine
            .session()
            .query_with(sql, &QueryOptions::iterative())
            .unwrap();
        assert_eq!(
            result.rows.len(),
            (CUSTOMERS * ORDERS_PER_CUSTOMER) as usize
        );
        assert_eq!(
            result.exec_stats.udf_invocations, serial.exec_stats.udf_invocations,
            "round {round}: parallel invocation count drifted from the serial baseline"
        );
    }
}
