//! Serial/parallel equivalence of the morsel-driven executor.
//!
//! The parallel engine's contract is strict: for every plan and every worker-pool
//! size, the parallel execution must produce **byte-identical** results to the serial
//! row-at-a-time path — same rows, same row order, same float rounding (aggregation
//! partitions by group key, so each group's accumulation chain stays in global row
//! order). These tests drive that contract with the deterministic property harness
//! used by `tests/rule_properties.rs`, across `parallelism ∈ {1, 2, 4, 8}`.

use udf_decorrelation::algebra::{
    AggCall, AggFunc, ApplyKind, JoinKind, PlanBuilder, RelExpr, ScalarExpr as E,
};
use udf_decorrelation::common::{Column, DataType, Row, Schema, SmallRng, Value};
use udf_decorrelation::engine::{Database, QueryOptions};
use udf_decorrelation::exec::{ExecConfig, Executor, ResultSet};
use udf_decorrelation::storage::Catalog;
use udf_decorrelation::tpch::{experiment1, experiment2, experiment3, generate, TpchConfig};
use udf_decorrelation::udf::FunctionRegistry;

const PARALLELISMS: [usize; 4] = [1, 2, 4, 8];
/// Small morsels so even the property-sized tables span many of them.
const TEST_MORSEL: usize = 16;

fn config_with(parallelism: usize) -> ExecConfig {
    ExecConfig {
        parallelism,
        morsel_size: TEST_MORSEL,
        ..ExecConfig::default()
    }
}

/// Executes `plan` serially and at every tested pool size; asserts byte-identical
/// results (including row order) and returns the serial result.
fn assert_parallel_equivalence(catalog: &Catalog, plan: &RelExpr) -> ResultSet {
    let registry = FunctionRegistry::new();
    let serial = Executor::with_config(catalog, &registry, config_with(1))
        .execute(plan)
        .expect("serial execution");
    for p in PARALLELISMS {
        let executor = Executor::with_config(catalog, &registry, config_with(p));
        let parallel = executor.execute(plan).expect("parallel execution");
        assert_eq!(
            serial, parallel,
            "parallel execution at {p} workers diverged from serial"
        );
        assert_eq!(serial.canonical(), parallel.canonical());
    }
    serial
}

/// Deterministic per-case RNG driver (same scheme as `tests/rule_properties.rs`).
fn check_property(name: &str, cases: u64, property: impl Fn(&mut SmallRng)) {
    for case in 0..cases {
        let seed = 0x9A11_0000 + case;
        let mut rng = SmallRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(panic) = result {
            eprintln!("property '{name}' failed for seed {seed:#x} (case {case})");
            std::panic::resume_unwind(panic);
        }
    }
}

/// A catalog with one `accounts(id, grp, amount)` table of `n` random rows.
fn random_accounts(rng: &mut SmallRng, min: usize, max: usize) -> Catalog {
    let mut catalog = Catalog::new();
    catalog
        .create_table(
            "accounts",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::new("amount", DataType::Float),
            ]),
        )
        .unwrap();
    let n = rng.gen_range_usize(min, max);
    catalog
        .insert_rows(
            "accounts",
            (0..n)
                .map(|_| {
                    Row::new(vec![
                        Value::Int(rng.gen_range_i64(0, 200)),
                        Value::Int(rng.gen_range_i64(0, 9)),
                        Value::Float(rng.gen_range_f64(-1000.0, 1000.0)),
                    ])
                })
                .collect(),
        )
        .unwrap();
    catalog
}

/// One random plan over the accounts table, covering every parallelised operator:
/// filter, project, hash aggregation (float sums included), equi-join, Apply with a
/// correlated scalar aggregate, and sort.
fn random_plan(rng: &mut SmallRng) -> RelExpr {
    match rng.gen_range_usize(0, 6) {
        0 => {
            // σ + Π with arithmetic.
            let threshold = rng.gen_range_f64(-500.0, 500.0);
            PlanBuilder::scan("accounts")
                .select(E::gt(E::column("amount"), E::literal(threshold)))
                .project(vec![
                    (E::column("id"), None),
                    (
                        E::binary(
                            udf_decorrelation::algebra::BinaryOp::Mul,
                            E::column("amount"),
                            E::literal(2),
                        ),
                        Some("doubled"),
                    ),
                ])
                .build()
        }
        1 => {
            // Grouped hash aggregation with order-sensitive float accumulators.
            PlanBuilder::scan("accounts")
                .aggregate(
                    vec![E::column("grp")],
                    vec![
                        AggCall::new(AggFunc::Sum, vec![E::column("amount")], "total"),
                        AggCall::new(AggFunc::Avg, vec![E::column("amount")], "mean"),
                        AggCall::new(AggFunc::CountStar, vec![], "n"),
                        AggCall::new(AggFunc::Min, vec![E::column("amount")], "lo"),
                        AggCall::new(AggFunc::Max, vec![E::column("amount")], "hi"),
                    ],
                )
                .build()
        }
        2 => {
            // Scalar (ungrouped) float aggregate: one accumulation chain.
            PlanBuilder::scan("accounts")
                .aggregate(
                    vec![],
                    vec![AggCall::new(AggFunc::Sum, vec![E::column("amount")], "s")],
                )
                .build()
        }
        3 => {
            // Self equi-join (hash path once the inputs clear the threshold).
            let limit = rng.gen_range_f64(-500.0, 500.0);
            PlanBuilder::scan_as("accounts", "a")
                .join(
                    PlanBuilder::scan_as("accounts", "b")
                        .select(E::gt(E::qualified_column("b", "amount"), E::literal(limit))),
                    JoinKind::Inner,
                    Some(E::eq(
                        E::qualified_column("a", "grp"),
                        E::qualified_column("b", "grp"),
                    )),
                )
                .project(vec![
                    (E::qualified_column("a", "id"), None),
                    (E::qualified_column("b", "id"), Some("other")),
                ])
                .build()
        }
        4 => {
            // Correlated Apply: per-row scalar aggregate over the same table.
            let inner = PlanBuilder::scan_as("accounts", "inner_side")
                .select(E::eq(
                    E::qualified_column("inner_side", "grp"),
                    E::qualified_column("outer_side", "grp"),
                ))
                .aggregate(
                    vec![],
                    vec![AggCall::new(
                        AggFunc::Sum,
                        vec![E::qualified_column("inner_side", "amount")],
                        "total",
                    )],
                );
            PlanBuilder::scan_as("accounts", "outer_side")
                .apply(inner, ApplyKind::Cross, vec![])
                .project(vec![
                    (E::qualified_column("outer_side", "id"), None),
                    (E::column("total"), None),
                ])
                .build()
        }
        _ => {
            // Sort over a filtered scan (tie-heavy keys exercise merge stability).
            let threshold = rng.gen_range_f64(-500.0, 500.0);
            PlanBuilder::scan("accounts")
                .select(E::gt(E::column("amount"), E::literal(threshold)))
                .sort(vec![(E::column("grp"), rng.gen_range_usize(0, 2) == 0)])
                .build()
        }
    }
}

#[test]
fn random_plans_are_parallelism_invariant() {
    check_property("random_plans_are_parallelism_invariant", 40, |rng| {
        let catalog = random_accounts(rng, 60, 220);
        let plan = random_plan(rng);
        assert_parallel_equivalence(&catalog, &plan);
    });
}

#[test]
fn morsel_edge_cases_fall_back_to_serial_semantics() {
    // Empty table, table smaller than one morsel, and a single worker must all produce
    // the serial result (and the first two never dispatch morsels at all).
    let registry = FunctionRegistry::new();
    for rows in [0usize, 5] {
        let mut catalog = Catalog::new();
        catalog
            .create_table(
                "accounts",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::new("grp", DataType::Int),
                    Column::new("amount", DataType::Float),
                ]),
            )
            .unwrap();
        catalog
            .insert_rows(
                "accounts",
                (0..rows as i64)
                    .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 2), Value::Float(1.5)]))
                    .collect(),
            )
            .unwrap();
        let plan = PlanBuilder::scan("accounts")
            .aggregate(
                vec![],
                vec![AggCall::new(AggFunc::Sum, vec![E::column("amount")], "s")],
            )
            .build();
        let serial = Executor::with_config(&catalog, &registry, config_with(1))
            .execute(&plan)
            .unwrap();
        let parallel_exec = Executor::with_config(
            &catalog,
            &registry,
            ExecConfig {
                parallelism: 4,
                morsel_size: 8,
                ..ExecConfig::default()
            },
        );
        let parallel = parallel_exec.execute(&plan).unwrap();
        assert_eq!(serial, parallel, "{rows} rows");
        assert_eq!(
            parallel_exec.stats_snapshot().morsels_dispatched,
            0,
            "inputs within one morsel must not fan out"
        );
    }
}

#[test]
fn single_worker_parallelism_is_the_serial_path() {
    let mut rng = SmallRng::seed_from_u64(0x51);
    let catalog = random_accounts(&mut rng, 100, 150);
    let plan = random_plan(&mut rng);
    let registry = FunctionRegistry::new();
    let executor = Executor::with_config(&catalog, &registry, config_with(1));
    executor.execute(&plan).unwrap();
    let stats = executor.stats_snapshot();
    assert_eq!(stats.morsels_dispatched, 0);
    assert_eq!(stats.parallel_operators, 0);
    assert!(executor.trace_snapshot().is_empty());
}

/// Satellite regression: `ResultSet::canonical()` (and the raw row order beneath it)
/// must be deterministic regardless of worker interleaving — repeated parallel runs of
/// the same query are byte-identical to each other and to the serial run.
#[test]
fn canonical_is_deterministic_across_worker_interleavings() {
    let db = parallel_db(200);
    let sql = "select custkey, service_level(custkey) as level from customer";
    let serial = db.query_with(sql, &options_with_parallelism(1)).unwrap();
    let mut canonicals = vec![];
    for _ in 0..5 {
        let parallel = db.query_with(sql, &options_with_parallelism(4)).unwrap();
        assert_eq!(serial.rows, parallel.rows, "row order diverged from serial");
        canonicals.push(
            ResultSet {
                schema: parallel.schema.clone(),
                rows: parallel.rows.clone(),
            }
            .canonical(),
        );
    }
    assert!(
        canonicals.windows(2).all(|w| w[0] == w[1]),
        "canonical() varied across runs"
    );
}

fn parallel_db(customers: usize) -> Database {
    let mut db = generate(&TpchConfig::tiny().with_customers(customers)).unwrap();
    experiment2().install(&mut db).unwrap();
    db
}

fn options_with_parallelism(parallelism: usize) -> QueryOptions {
    QueryOptions {
        exec_config: Some(ExecConfig {
            parallelism,
            morsel_size: TEST_MORSEL,
            ..ExecConfig::default()
        }),
        ..QueryOptions::default()
    }
}

/// End-to-end engine equivalence on the paper's three experiment workloads, both
/// execution strategies, across the tested pool sizes.
#[test]
fn experiment_workloads_are_parallelism_invariant_end_to_end() {
    for (workload, invocations) in [(experiment1(), 40), (experiment2(), 30), (experiment3(), 8)] {
        let mut db = generate(&TpchConfig::tiny()).unwrap();
        workload.install(&mut db).unwrap();
        let sql = (workload.query)(invocations);
        for strategy in [
            QueryOptions::iterative,
            QueryOptions::decorrelated,
            QueryOptions::default,
        ] {
            let serial = db
                .query_with(&sql, &with_config(strategy(), 1))
                .unwrap_or_else(|e| panic!("{}: serial: {e}", workload.name));
            for p in PARALLELISMS {
                let parallel = db
                    .query_with(&sql, &with_config(strategy(), p))
                    .unwrap_or_else(|e| panic!("{}: parallel {p}: {e}", workload.name));
                assert_eq!(
                    serial.rows, parallel.rows,
                    "{}: parallelism {p} diverged",
                    workload.name
                );
                // The counters that describe the *logical* work must not depend on the
                // pool size.
                assert_eq!(
                    serial.exec_stats.udf_invocations,
                    parallel.exec_stats.udf_invocations
                );
                assert_eq!(
                    serial.exec_stats.rows_scanned,
                    parallel.exec_stats.rows_scanned
                );
                assert_eq!(serial.exec_stats.hash_joins, parallel.exec_stats.hash_joins);
            }
        }
    }
}

fn with_config(mut options: QueryOptions, parallelism: usize) -> QueryOptions {
    options.exec_config = Some(ExecConfig {
        parallelism,
        morsel_size: TEST_MORSEL,
        ..ExecConfig::default()
    });
    options
}

/// A parallel run populates the per-operator execution trace and the morsel counters.
#[test]
fn parallel_runs_record_an_execution_trace() {
    let db = parallel_db(300);
    let sql = "select custkey, service_level(custkey) as level from customer";
    let result = db.query_with(sql, &options_with_parallelism(4)).unwrap();
    assert!(result.exec_stats.morsels_dispatched > 0);
    assert!(result.exec_stats.parallel_operators > 0);
    assert!(!result.exec_trace.is_empty());
    let rendered = result.exec_trace.render();
    assert!(rendered.contains("morsels"), "{rendered}");
    for op in &result.exec_trace.operators {
        assert!(op.workers >= 1 && op.workers <= 4);
        assert!(op.morsels > 0);
        assert_eq!(op.rows_per_worker.len(), op.workers);
    }
}
