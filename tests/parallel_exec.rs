//! Serial/parallel equivalence of the morsel-driven executor.
//!
//! The parallel engine's contract is strict: for every plan and every worker-pool
//! size, the parallel execution must produce **byte-identical** results to the serial
//! row-at-a-time path — same rows, same row order, same float rounding (aggregation
//! partitions by group key, so each group's accumulation chain stays in global row
//! order). These tests drive that contract with the deterministic property harness
//! used by `tests/rule_properties.rs`, across `parallelism ∈ {1, 2, 4, 8}`.

use udf_decorrelation::algebra::{
    AggCall, AggFunc, ApplyKind, JoinKind, PlanBuilder, RelExpr, ScalarExpr as E,
};
use udf_decorrelation::common::{Column, DataType, Row, Schema, SmallRng, Value};
use udf_decorrelation::engine::{Database, QueryOptions};
use udf_decorrelation::exec::{ExecConfig, Executor, ResultSet};
use udf_decorrelation::storage::Catalog;
use udf_decorrelation::tpch::{experiment1, experiment2, experiment3, generate, TpchConfig};
use udf_decorrelation::udf::FunctionRegistry;

use std::sync::Arc;

const PARALLELISMS: [usize; 4] = [1, 2, 4, 8];
/// Small morsels so even the property-sized tables span many of them.
const TEST_MORSEL: usize = 16;

fn config_with(parallelism: usize) -> ExecConfig {
    ExecConfig {
        parallelism,
        morsel_size: TEST_MORSEL,
        ..ExecConfig::default()
    }
}

/// Executes `plan` serially and at every tested pool size; asserts byte-identical
/// results (including row order) and returns the serial result.
fn assert_parallel_equivalence(catalog: &Arc<Catalog>, plan: &RelExpr) -> ResultSet {
    let registry = Arc::new(FunctionRegistry::new());
    let serial = Executor::with_config(Arc::clone(catalog), Arc::clone(&registry), config_with(1))
        .execute(plan)
        .expect("serial execution");
    for p in PARALLELISMS {
        let executor =
            Executor::with_config(Arc::clone(catalog), Arc::clone(&registry), config_with(p));
        let parallel = executor.execute(plan).expect("parallel execution");
        assert_eq!(
            serial, parallel,
            "parallel execution at {p} workers diverged from serial"
        );
        assert_eq!(serial.canonical(), parallel.canonical());
    }
    serial
}

/// Deterministic per-case RNG driver (same scheme as `tests/rule_properties.rs`).
fn check_property(name: &str, cases: u64, property: impl Fn(&mut SmallRng)) {
    for case in 0..cases {
        let seed = 0x9A11_0000 + case;
        let mut rng = SmallRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(panic) = result {
            eprintln!("property '{name}' failed for seed {seed:#x} (case {case})");
            std::panic::resume_unwind(panic);
        }
    }
}

/// A catalog with one `accounts(id, grp, amount)` table of `n` random rows.
fn random_accounts(rng: &mut SmallRng, min: usize, max: usize) -> Catalog {
    let mut catalog = Catalog::new();
    catalog
        .create_table(
            "accounts",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("grp", DataType::Int),
                Column::new("amount", DataType::Float),
            ]),
        )
        .unwrap();
    let n = rng.gen_range_usize(min, max);
    catalog
        .insert_rows(
            "accounts",
            (0..n)
                .map(|_| {
                    Row::new(vec![
                        Value::Int(rng.gen_range_i64(0, 200)),
                        Value::Int(rng.gen_range_i64(0, 9)),
                        Value::Float(rng.gen_range_f64(-1000.0, 1000.0)),
                    ])
                })
                .collect(),
        )
        .unwrap();
    catalog
}

/// One random plan over the accounts table, covering every parallelised operator:
/// filter, project, hash aggregation (float sums included), equi-join, Apply with a
/// correlated scalar aggregate, and sort.
fn random_plan(rng: &mut SmallRng) -> RelExpr {
    match rng.gen_range_usize(0, 6) {
        0 => {
            // σ + Π with arithmetic.
            let threshold = rng.gen_range_f64(-500.0, 500.0);
            PlanBuilder::scan("accounts")
                .select(E::gt(E::column("amount"), E::literal(threshold)))
                .project(vec![
                    (E::column("id"), None),
                    (
                        E::binary(
                            udf_decorrelation::algebra::BinaryOp::Mul,
                            E::column("amount"),
                            E::literal(2),
                        ),
                        Some("doubled"),
                    ),
                ])
                .build()
        }
        1 => {
            // Grouped hash aggregation with order-sensitive float accumulators.
            PlanBuilder::scan("accounts")
                .aggregate(
                    vec![E::column("grp")],
                    vec![
                        AggCall::new(AggFunc::Sum, vec![E::column("amount")], "total"),
                        AggCall::new(AggFunc::Avg, vec![E::column("amount")], "mean"),
                        AggCall::new(AggFunc::CountStar, vec![], "n"),
                        AggCall::new(AggFunc::Min, vec![E::column("amount")], "lo"),
                        AggCall::new(AggFunc::Max, vec![E::column("amount")], "hi"),
                    ],
                )
                .build()
        }
        2 => {
            // Scalar (ungrouped) float aggregate: one accumulation chain.
            PlanBuilder::scan("accounts")
                .aggregate(
                    vec![],
                    vec![AggCall::new(AggFunc::Sum, vec![E::column("amount")], "s")],
                )
                .build()
        }
        3 => {
            // Self equi-join (hash path once the inputs clear the threshold).
            let limit = rng.gen_range_f64(-500.0, 500.0);
            PlanBuilder::scan_as("accounts", "a")
                .join(
                    PlanBuilder::scan_as("accounts", "b")
                        .select(E::gt(E::qualified_column("b", "amount"), E::literal(limit))),
                    JoinKind::Inner,
                    Some(E::eq(
                        E::qualified_column("a", "grp"),
                        E::qualified_column("b", "grp"),
                    )),
                )
                .project(vec![
                    (E::qualified_column("a", "id"), None),
                    (E::qualified_column("b", "id"), Some("other")),
                ])
                .build()
        }
        4 => {
            // Correlated Apply: per-row scalar aggregate over the same table.
            let inner = PlanBuilder::scan_as("accounts", "inner_side")
                .select(E::eq(
                    E::qualified_column("inner_side", "grp"),
                    E::qualified_column("outer_side", "grp"),
                ))
                .aggregate(
                    vec![],
                    vec![AggCall::new(
                        AggFunc::Sum,
                        vec![E::qualified_column("inner_side", "amount")],
                        "total",
                    )],
                );
            PlanBuilder::scan_as("accounts", "outer_side")
                .apply(inner, ApplyKind::Cross, vec![])
                .project(vec![
                    (E::qualified_column("outer_side", "id"), None),
                    (E::column("total"), None),
                ])
                .build()
        }
        _ => {
            // Sort over a filtered scan (tie-heavy keys exercise merge stability).
            let threshold = rng.gen_range_f64(-500.0, 500.0);
            PlanBuilder::scan("accounts")
                .select(E::gt(E::column("amount"), E::literal(threshold)))
                .sort(vec![(E::column("grp"), rng.gen_range_usize(0, 2) == 0)])
                .build()
        }
    }
}

#[test]
fn random_plans_are_parallelism_invariant() {
    check_property("random_plans_are_parallelism_invariant", 40, |rng| {
        let catalog = Arc::new(random_accounts(rng, 60, 220));
        let plan = random_plan(rng);
        assert_parallel_equivalence(&catalog, &plan);
    });
}

#[test]
fn morsel_edge_cases_fall_back_to_serial_semantics() {
    // Empty table, table smaller than one morsel, and a single worker must all produce
    // the serial result (and the first two never dispatch morsels at all).
    let registry = Arc::new(FunctionRegistry::new());
    for rows in [0usize, 5] {
        let mut catalog = Catalog::new();
        catalog
            .create_table(
                "accounts",
                Schema::new(vec![
                    Column::new("id", DataType::Int),
                    Column::new("grp", DataType::Int),
                    Column::new("amount", DataType::Float),
                ]),
            )
            .unwrap();
        catalog
            .insert_rows(
                "accounts",
                (0..rows as i64)
                    .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 2), Value::Float(1.5)]))
                    .collect(),
            )
            .unwrap();
        let plan = PlanBuilder::scan("accounts")
            .aggregate(
                vec![],
                vec![AggCall::new(AggFunc::Sum, vec![E::column("amount")], "s")],
            )
            .build();
        let catalog = Arc::new(catalog);
        let serial =
            Executor::with_config(Arc::clone(&catalog), Arc::clone(&registry), config_with(1))
                .execute(&plan)
                .unwrap();
        let parallel_exec = Executor::with_config(
            Arc::clone(&catalog),
            Arc::clone(&registry),
            ExecConfig {
                parallelism: 4,
                morsel_size: 8,
                ..ExecConfig::default()
            },
        );
        let parallel = parallel_exec.execute(&plan).unwrap();
        assert_eq!(serial, parallel, "{rows} rows");
        assert_eq!(
            parallel_exec.stats_snapshot().morsels_dispatched,
            0,
            "inputs within one morsel must not fan out"
        );
    }
}

#[test]
fn single_worker_parallelism_is_the_serial_path() {
    let mut rng = SmallRng::seed_from_u64(0x51);
    let catalog = Arc::new(random_accounts(&mut rng, 100, 150));
    let plan = random_plan(&mut rng);
    let registry = Arc::new(FunctionRegistry::new());
    let executor = Executor::with_config(catalog, registry, config_with(1));
    executor.execute(&plan).unwrap();
    let stats = executor.stats_snapshot();
    assert_eq!(stats.morsels_dispatched, 0);
    assert_eq!(stats.parallel_operators, 0);
    assert!(executor.trace_snapshot().is_empty());
}

/// Satellite regression: `ResultSet::canonical()` (and the raw row order beneath it)
/// must be deterministic regardless of worker interleaving — repeated parallel runs of
/// the same query are byte-identical to each other and to the serial run.
#[test]
fn canonical_is_deterministic_across_worker_interleavings() {
    let db = parallel_db(200);
    let sql = "select custkey, service_level(custkey) as level from customer";
    let serial = db.query_with(sql, &options_with_parallelism(1)).unwrap();
    let mut canonicals = vec![];
    for _ in 0..5 {
        let parallel = db.query_with(sql, &options_with_parallelism(4)).unwrap();
        assert_eq!(serial.rows, parallel.rows, "row order diverged from serial");
        canonicals.push(
            ResultSet {
                schema: parallel.schema.clone(),
                rows: parallel.rows.clone(),
            }
            .canonical(),
        );
    }
    assert!(
        canonicals.windows(2).all(|w| w[0] == w[1]),
        "canonical() varied across runs"
    );
}

fn parallel_db(customers: usize) -> Database {
    let mut db = generate(&TpchConfig::tiny().with_customers(customers)).unwrap();
    experiment2().install(&mut db).unwrap();
    db
}

fn options_with_parallelism(parallelism: usize) -> QueryOptions {
    QueryOptions {
        exec_config: Some(ExecConfig {
            parallelism,
            morsel_size: TEST_MORSEL,
            // These tests compare logical work across repeated runs of one database;
            // the cross-query memo would turn later runs into pure cache hits.
            udf_memoization: false,
            ..ExecConfig::default()
        }),
        ..QueryOptions::default()
    }
}

/// End-to-end engine equivalence on the paper's three experiment workloads, both
/// execution strategies, across the tested pool sizes.
#[test]
fn experiment_workloads_are_parallelism_invariant_end_to_end() {
    for (workload, invocations) in [(experiment1(), 40), (experiment2(), 30), (experiment3(), 8)] {
        let mut db = generate(&TpchConfig::tiny()).unwrap();
        workload.install(&mut db).unwrap();
        let sql = (workload.query)(invocations);
        for strategy in [
            QueryOptions::iterative,
            QueryOptions::decorrelated,
            QueryOptions::default,
        ] {
            let serial = db
                .query_with(&sql, &with_config(strategy(), 1))
                .unwrap_or_else(|e| panic!("{}: serial: {e}", workload.name));
            for p in PARALLELISMS {
                let parallel = db
                    .query_with(&sql, &with_config(strategy(), p))
                    .unwrap_or_else(|e| panic!("{}: parallel {p}: {e}", workload.name));
                assert_eq!(
                    serial.rows, parallel.rows,
                    "{}: parallelism {p} diverged",
                    workload.name
                );
                // The counters that describe the *logical* work must not depend on the
                // pool size.
                assert_eq!(
                    serial.exec_stats.udf_invocations,
                    parallel.exec_stats.udf_invocations
                );
                assert_eq!(
                    serial.exec_stats.rows_scanned,
                    parallel.exec_stats.rows_scanned
                );
                assert_eq!(serial.exec_stats.hash_joins, parallel.exec_stats.hash_joins);
            }
        }
    }
}

fn with_config(mut options: QueryOptions, parallelism: usize) -> QueryOptions {
    options.exec_config = Some(ExecConfig {
        parallelism,
        morsel_size: TEST_MORSEL,
        // See `options_with_parallelism`: logical-work counters must not depend on
        // how warm the cross-query memo is.
        udf_memoization: false,
        ..ExecConfig::default()
    });
    options
}

/// The persistent pool: worker threads are spawned once (at `set_parallelism`) and
/// reused across queries — per-query spawns drop to zero after warm-up.
#[test]
fn worker_pool_persists_across_queries() {
    let mut db = parallel_db(300);
    let sql = "select custkey, service_level(custkey) as level from customer";
    db.set_parallelism(4);
    let stats = db.worker_pool_stats();
    assert_eq!(stats.workers, 4, "set_parallelism warms the pool eagerly");
    assert_eq!(stats.threads_spawned, 4);
    let mut batches_seen = 0;
    for round in 0..3 {
        // Small morsels so the operators actually fan out on this data size.
        let result = db
            .query_with(sql, &options_with_parallelism(4))
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert!(result.exec_stats.parallel_operators > 0, "round {round}");
        assert_eq!(
            result.exec_stats.pool_spawns, 0,
            "round {round}: a warm pool must not spawn per query"
        );
        let stats = db.worker_pool_stats();
        assert_eq!(stats.threads_spawned, 4, "round {round}: no respawn");
        assert!(stats.batches_run > batches_seen, "round {round}");
        batches_seen = stats.batches_run;
    }
    // Shrinking back to serial retires the pool; growing again rebuilds it.
    db.set_parallelism(1);
    assert_eq!(db.worker_pool_stats().workers, 0);
    db.set_parallelism(2);
    assert_eq!(db.worker_pool_stats().workers, 2);
}

/// Pool-panic safety: a batch whose task panics (a UDF exploding mid-morsel) fails
/// that query with an `Error`, but the database's persistent pool stays usable — the
/// next query runs on the same worker threads.
#[test]
fn panicked_batch_leaves_the_engine_pool_usable() {
    let mut db = parallel_db(300);
    db.set_parallelism(4);
    let pool = db.worker_pool();
    let err = pool
        .run_batch(4, 8, Box::new(|_, idx| assert!(idx != 5, "udf panic")))
        .unwrap_err();
    assert!(err.contains("udf panic"), "{err}");
    let spawned = db.worker_pool_stats().threads_spawned;
    let sql = "select custkey, service_level(custkey) as level from customer";
    let serial = db.query_with(sql, &options_with_parallelism(1)).unwrap();
    let parallel = db.query_with(sql, &options_with_parallelism(4)).unwrap();
    assert_eq!(serial.rows, parallel.rows);
    assert!(parallel.exec_stats.parallel_operators > 0);
    assert_eq!(
        db.worker_pool_stats().threads_spawned,
        spawned,
        "recovery must not respawn workers"
    );
}

/// Pipelined execution: fused scan→filter→project chains produce byte-identical rows
/// to the materialized (fusion-off) execution, and the fusion actually engages.
#[test]
fn pipelined_chains_match_materialized_execution() {
    let db = parallel_db(400);
    let sql = "select custkey, service_level(custkey) as level from customer \
               where custkey > 10";
    let serial = db.query_with(sql, &options_with_parallelism(1)).unwrap();
    let fused = db.query_with(sql, &options_with_parallelism(4)).unwrap();
    let mut materialized_options = options_with_parallelism(4);
    if let Some(config) = &mut materialized_options.exec_config {
        config.pipeline_fusion = false;
    }
    let materialized = db.query_with(sql, &materialized_options).unwrap();
    assert_eq!(serial.rows, fused.rows);
    assert_eq!(serial.rows, materialized.rows);
    assert!(
        fused.exec_stats.pipelined_operators > 0,
        "fusion did not engage: {:?}",
        fused.exec_stats
    );
    assert_eq!(materialized.exec_stats.pipelined_operators, 0);
    // The fused trace reports the chain as one operator with its fused depth.
    assert!(
        fused
            .exec_trace
            .operators
            .iter()
            .any(|op| op.operator.starts_with("pipeline(") && op.pipelined_stages >= 2),
        "no pipelined operator in trace:\n{}",
        fused.exec_trace.render()
    );
}

/// Satellite regression: a degenerate `morsel_size: 0` (or `parallelism: 0`) literal
/// is clamped at executor construction instead of degenerating into one-row morsels,
/// and `Database::set_parallelism(0)` clamps to serial.
#[test]
fn degenerate_exec_config_is_clamped() {
    let mut rng = SmallRng::seed_from_u64(0xC1A);
    let catalog = std::sync::Arc::new(random_accounts(&mut rng, 100, 120));
    let registry = std::sync::Arc::new(FunctionRegistry::new());
    let plan = PlanBuilder::scan("accounts")
        .select(E::gt(E::column("amount"), E::literal(0)))
        .build();
    let serial = Executor::with_config(
        std::sync::Arc::clone(&catalog),
        std::sync::Arc::clone(&registry),
        config_with(1),
    )
    .execute(&plan)
    .unwrap();
    let degenerate = Executor::with_config(
        std::sync::Arc::clone(&catalog),
        std::sync::Arc::clone(&registry),
        ExecConfig {
            parallelism: 4,
            morsel_size: 0,
            ..ExecConfig::default()
        },
    );
    assert_eq!(degenerate.config.morsel_size, 1, "clamped at construction");
    let result = degenerate.execute(&plan).unwrap();
    assert_eq!(serial, result);
    let rows = catalog.table("accounts").unwrap().row_count() as u64;
    assert!(
        degenerate.stats_snapshot().morsels_dispatched < rows,
        "morsel_size 0 must not degenerate into one-row morsels ({} morsels for {} rows)",
        degenerate.stats_snapshot().morsels_dispatched,
        rows
    );
    // A 1-row input never fans out, even with the clamped 1-row morsel floor.
    let tiny = Executor::with_config(
        std::sync::Arc::clone(&catalog),
        registry,
        ExecConfig {
            parallelism: 0,
            morsel_size: 0,
            ..ExecConfig::default()
        },
    );
    assert_eq!(tiny.config.parallelism, 1, "parallelism 0 clamps to serial");
    // Database-level clamp.
    let mut db = parallel_db(10);
    db.set_parallelism(0);
    assert_eq!(db.parallelism(), 1);
    assert_eq!(db.worker_pool_stats().workers, 0);
}

/// A parallel run populates the per-operator execution trace and the morsel counters.
#[test]
fn parallel_runs_record_an_execution_trace() {
    let db = parallel_db(300);
    let sql = "select custkey, service_level(custkey) as level from customer";
    let result = db.query_with(sql, &options_with_parallelism(4)).unwrap();
    assert!(result.exec_stats.morsels_dispatched > 0);
    assert!(result.exec_stats.parallel_operators > 0);
    assert!(!result.exec_trace.is_empty());
    let rendered = result.exec_trace.render();
    assert!(rendered.contains("morsels"), "{rendered}");
    for op in &result.exec_trace.operators {
        assert!(op.workers >= 1 && op.workers <= 4);
        assert!(op.morsels > 0);
        assert_eq!(op.rows_per_worker.len(), op.workers);
    }
}
