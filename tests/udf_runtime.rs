//! The UDF invocation runtime: batching/dedup, cross-query memoization of pure UDF
//! results, and their invalidation rules.
//!
//! Two contracts are driven here end to end:
//!
//! * **transparency** — with batching and memoization on, every query returns rows
//!   byte-identical to the plain evaluation, at every tested pool size, warm or cold;
//! * **freshness** — a memoized result never outlives the registry or catalog state
//!   it was computed against: redefining a UDF or changing table data empties the
//!   stale entries before the next query runs.

use udf_decorrelation::common::{Row, SmallRng, Value};
use udf_decorrelation::engine::{Database, QueryOptions};
use udf_decorrelation::exec::ExecConfig;

const PARALLELISMS: [usize; 4] = [1, 2, 4, 8];
/// Small morsels so the property-sized tables span many of them.
const TEST_MORSEL: usize = 16;

/// A database with a `probes` table whose `grp` column repeats heavily (the
/// repeated-argument workload batching and memoization feed on) and a pure UDF whose
/// result depends on the `items` table.
fn scored_db(rows: usize, distinct_groups: i64, seed: u64) -> Database {
    let mut db = Database::new();
    db.execute(
        "create table items(id int not null, grp int, val float); \
         create index on items(grp); \
         create table probes(id int not null, grp int)",
    )
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(seed);
    let items: Vec<Row> = (0..rows)
        .map(|i| {
            Row::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range_i64(0, distinct_groups)),
                Value::Float(rng.gen_range_f64(1.0, 100.0)),
            ])
        })
        .collect();
    db.load_rows("items", items).unwrap();
    let probes: Vec<Row> = (0..rows)
        .map(|i| {
            Row::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range_i64(0, distinct_groups)),
            ])
        })
        .collect();
    db.load_rows("probes", probes).unwrap();
    db.register_function(
        "create function group_score(int g) returns float as \
         begin \
           float total; \
           select sum(val) into :total from items where grp = :g; \
           if (total > 0) return total; \
           return 0.0; \
         end",
    )
    .unwrap();
    db
}

fn runtime_config(parallelism: usize, batching: bool, memoization: bool) -> ExecConfig {
    ExecConfig {
        parallelism,
        morsel_size: TEST_MORSEL,
        udf_batching: batching,
        udf_memoization: memoization,
        ..ExecConfig::default()
    }
}

fn iterative_with(config: ExecConfig) -> QueryOptions {
    QueryOptions {
        exec_config: Some(config),
        ..QueryOptions::iterative()
    }
}

/// Seeded property test: batching + memoization on vs off produce byte-identical
/// rows (same values, same order) across parallelism 1/2/4/8, on projections and on
/// multi-conjunct UDF filters, cold and warm.
#[test]
fn batching_and_memoization_preserve_results_bytewise() {
    for seed in [7, 99, 2014] {
        let db = scored_db(200, 12, seed);
        for sql in [
            "select id, grp, group_score(grp) as score from probes",
            // Two conjuncts, one UDF-bearing: exercises the cost-ordered path too.
            "select id from probes where group_score(grp) > 200.0 and id >= 10",
        ] {
            let baseline = db
                .query_with(sql, &iterative_with(runtime_config(1, false, false)))
                .unwrap();
            for p in PARALLELISMS {
                // Cold-ish and warm runs: the second run at each pool size is
                // answered mostly from the memo and must not change a byte.
                for run in 0..2 {
                    let result = db
                        .query_with(sql, &iterative_with(runtime_config(p, true, true)))
                        .unwrap();
                    assert_eq!(
                        baseline.rows, result.rows,
                        "seed {seed} parallelism {p} run {run} diverged for {sql}"
                    );
                }
            }
        }
        // 200 probes over 12 groups repeat heavily: the runtime must have answered
        // most calls from the caches instead of evaluating the body per row.
        let warm = db
            .query_with(
                "select id, grp, group_score(grp) as score from probes",
                &iterative_with(runtime_config(4, true, true)),
            )
            .unwrap();
        let stats = &warm.exec_stats;
        assert!(
            stats.udf_memo_hits + stats.udf_dedup_hits > 0,
            "warm run should hit the caches: {stats:?}"
        );
        assert_eq!(
            stats.udf_invocations, 0,
            "a fully warm memo answers every call: {stats:?}"
        );
    }
}

/// Redefining a UDF bumps the registry generation, which empties the memo: the new
/// definition's results must be served immediately, never the old ones.
#[test]
fn redefining_a_udf_never_serves_stale_results() {
    let mut db = Database::new();
    db.execute("create table t(x int)").unwrap();
    db.load_rows(
        "t",
        (1..=10i64).map(|i| Row::new(vec![Value::Int(i)])).collect(),
    )
    .unwrap();
    db.register_function("create function f(int x) returns int as begin return x + 1; end")
        .unwrap();
    let sql = "select x, f(x) as y from t";
    let first = db.query_with(sql, &QueryOptions::iterative()).unwrap();
    assert_eq!(
        first.column("y").unwrap(),
        (2..=11i64).map(Value::Int).collect::<Vec<_>>()
    );
    // Warm the memo: the second run is answered from it.
    let warm = db.query_with(sql, &QueryOptions::iterative()).unwrap();
    assert_eq!(first.rows, warm.rows);
    assert!(
        warm.exec_stats.udf_memo_hits > 0,
        "second run should be served by the memo: {:?}",
        warm.exec_stats
    );
    // Redefine f. The memoized x+1 results are now stale.
    db.register_function("create function f(int x) returns int as begin return x * 10; end")
        .unwrap();
    let after = db.query_with(sql, &QueryOptions::iterative()).unwrap();
    assert_eq!(
        after.column("y").unwrap(),
        (1..=10i64).map(|i| Value::Int(i * 10)).collect::<Vec<_>>(),
        "redefined UDF must never serve the old definition's results"
    );
    assert!(
        db.udf_memo_stats().invalidations >= 1,
        "the registry generation bump must flush the memo: {:?}",
        db.udf_memo_stats()
    );
}

/// Changing table data bumps the catalog's data generation: memoized results of
/// data-dependent pure UDFs are flushed, so the next query sees the new data.
#[test]
fn data_changes_invalidate_memoized_udf_results() {
    let db_seed = 4242;
    let mut db = scored_db(60, 3, db_seed);
    let sql = "select grp, group_score(grp) as score from probes where id < 5";
    let before = db.query_with(sql, &QueryOptions::iterative()).unwrap();
    // Warm run served from the memo.
    let warm = db.query_with(sql, &QueryOptions::iterative()).unwrap();
    assert_eq!(before.rows, warm.rows);
    // A new item changes every group's sum candidate set; the memoized scores for
    // group 0 are stale now.
    db.execute("insert into items values (10000, 0, 5000.0)")
        .unwrap();
    let after = db.query_with(sql, &QueryOptions::iterative()).unwrap();
    for (row_before, row_after) in before.rows.iter().zip(&after.rows) {
        let grp = row_before.get(0);
        if *grp == Value::Int(0) {
            assert_ne!(
                row_before.get(1),
                row_after.get(1),
                "group 0's memoized score must be recomputed after the insert"
            );
        } else {
            assert_eq!(row_before.get(1), row_after.get(1));
        }
    }
}

/// Memo invalidation is per table: `group_score` provably reads only `items`, so
/// its epoch is keyed on that table's data version. Inserting into the *unrelated*
/// `probes` table must keep its memoized results servable.
#[test]
fn unrelated_table_inserts_do_not_invalidate_memoized_results() {
    let mut db = scored_db(60, 3, 77);
    let sql = "select grp, group_score(grp) as score from probes where id < 5";
    let cold = db.query_with(sql, &QueryOptions::iterative()).unwrap();
    // Insert into a table group_score never reads (bumps the catalog-wide data
    // generation, but not items' data version).
    db.execute("insert into probes values (10000, 1)").unwrap();
    let warm = db.query_with(sql, &QueryOptions::iterative()).unwrap();
    assert!(
        warm.exec_stats.udf_memo_hits > 0,
        "inserting into probes must not evict group_score(items) results: {:?}",
        warm.exec_stats
    );
    for (row_cold, row_warm) in cold.rows.iter().zip(&warm.rows) {
        assert_eq!(row_cold.get(1), row_warm.get(1));
    }
    // Inserting into items *does* invalidate, as the sibling test above drives.
    db.execute("insert into items values (10001, 0, 5000.0)")
        .unwrap();
    let refreshed = db.query_with(sql, &QueryOptions::iterative()).unwrap();
    assert!(
        db.udf_memo_stats().invalidations >= 1,
        "items' data-version bump must drop stale group_score entries: {:?}",
        db.udf_memo_stats()
    );
    let stale_score = cold
        .rows
        .iter()
        .find(|r| *r.get(0) == Value::Int(0))
        .map(|r| r.get(1).clone());
    let fresh_score = refreshed
        .rows
        .iter()
        .find(|r| *r.get(0) == Value::Int(0))
        .map(|r| r.get(1).clone());
    assert_ne!(stale_score, fresh_score);
}

/// A `volatile` UDF opts out of both caches: every call evaluates the body.
#[test]
fn volatile_udfs_are_never_cached() {
    let mut db = Database::new();
    db.execute("create table t(x int)").unwrap();
    db.load_rows("t", vec![Row::new(vec![Value::Int(1)]); 10])
        .unwrap();
    db.register_function("create function v(int x) returns int volatile as begin return x; end")
        .unwrap();
    let result = db
        .query_with("select v(x) as y from t", &QueryOptions::iterative())
        .unwrap();
    assert_eq!(result.exec_stats.udf_invocations, 10);
    assert_eq!(result.exec_stats.udf_memo_hits, 0);
    assert_eq!(result.exec_stats.udf_dedup_hits, 0);
}

/// Observed UDF predicate pass-rates feed the feedback store, where the next query's
/// cost-ordered evaluation (and the strategy choice) can read them.
#[test]
fn filter_selectivity_feedback_is_recorded() {
    let db = scored_db(200, 12, 31);
    let sql = "select id from probes where group_score(grp) > 200.0 and id >= 0";
    db.query_with(sql, &QueryOptions::iterative()).unwrap();
    let selectivities = db.feedback().udf_selectivities();
    let observed = selectivities
        .get("group_score")
        .copied()
        .expect("the UDF conjunct's pass-rate should be recorded");
    assert!(
        (0.0..=1.0).contains(&observed),
        "pass-rate out of range: {observed}"
    );
    // Dedup feedback: repeated groups mean most calls were cache hits, so the
    // learned effective-invocation fraction is well below 1.
    let fractions = db.feedback().udf_dedup_fractions();
    let fraction = fractions
        .get("group_score")
        .copied()
        .expect("dedup fraction should be trusted after 200 calls");
    assert!(fraction < 0.5, "12 groups over 200 rows: {fraction}");
}

/// ROADMAP follow-up: the memo epoch covers a UDF's *full* read set, not just
/// single-table bodies. A UDF reading two tables is keyed on a fingerprint of both
/// data versions, so inserts into an unrelated third table keep its memoized results
/// servable — while an insert into either read table still evicts them.
#[test]
fn two_table_udf_memo_survives_inserts_into_unrelated_table() {
    let mut db = Database::new();
    db.execute(
        "create table items(grp int, val float); \
         create table rates(grp int, rate float); \
         create table probes(id int not null, grp int)",
    )
    .unwrap();
    db.load_rows(
        "items",
        (0..30)
            .map(|i| Row::new(vec![Value::Int(i % 3), Value::Float(10.0 + i as f64)]))
            .collect(),
    )
    .unwrap();
    db.load_rows(
        "rates",
        (0..3)
            .map(|g| Row::new(vec![Value::Int(g), Value::Float(1.0 + g as f64)]))
            .collect(),
    )
    .unwrap();
    db.load_rows(
        "probes",
        (0..20)
            .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 3)]))
            .collect(),
    )
    .unwrap();
    db.register_function(
        "create function scaled_score(int g) returns float as \
         begin \
           float total; float r; \
           select sum(val) into :total from items where grp = :g; \
           select max(rate) into :r from rates where grp = :g; \
           return total * r; \
         end",
    )
    .unwrap();
    let sql = "select grp, scaled_score(grp) as score from probes where id < 6";
    let cold = db.query_with(sql, &QueryOptions::iterative()).unwrap();
    // Insert into the table scaled_score never reads: bumps the catalog-wide data
    // generation, but neither items' nor rates' data version.
    db.execute("insert into probes values (1000, 1)").unwrap();
    let warm = db.query_with(sql, &QueryOptions::iterative()).unwrap();
    assert!(
        warm.exec_stats.udf_memo_hits > 0,
        "inserting into probes must not evict scaled_score(items, rates) results: {:?}",
        warm.exec_stats
    );
    for (row_cold, row_warm) in cold.rows.iter().zip(&warm.rows) {
        assert_eq!(row_cold.get(1), row_warm.get(1));
    }
    // Inserting into *either* read table invalidates: rates is the second table of
    // the read set, exactly the case a single-table epoch key would miss.
    db.execute("insert into rates values (0, 100.0)").unwrap();
    let refreshed = db.query_with(sql, &QueryOptions::iterative()).unwrap();
    assert!(
        db.udf_memo_stats().invalidations >= 1,
        "rates' data-version bump must drop stale scaled_score entries: {:?}",
        db.udf_memo_stats()
    );
    let stale = cold
        .rows
        .iter()
        .find(|r| *r.get(0) == Value::Int(0))
        .map(|r| r.get(1).clone());
    let fresh = refreshed
        .rows
        .iter()
        .find(|r| *r.get(0) == Value::Int(0))
        .map(|r| r.get(1).clone());
    assert_ne!(
        stale, fresh,
        "max(rate) for group 0 changed from 1.0 to 100.0"
    );
}

/// Regression: a UDF whose body reads the *same table* as the calling query must
/// decorrelate correctly. The inlined body's scan used to keep the outer query's
/// qualifier, so the correlation predicate `t.k = :k` collapsed into the tautology
/// `t.k = t.k` after parameter substitution and every row silently received the
/// whole-table aggregate.
#[test]
fn self_table_udf_decorrelates_to_the_same_answer_as_iteration() {
    let setup = |db: &mut Database| {
        db.execute("create table t0(c0 int not null, c1 float)")
            .unwrap();
        db.execute("insert into t0 values (1, 10.0), (1, 5.0), (2, 7.0), (3, 100.0)")
            .unwrap();
        db.register_function(
            "create function f0(int k) returns float as \
             begin return select sum(c1) from t0 where c0 = :k; end",
        )
        .unwrap();
    };
    let query = "select c0, f0(c0) as v from t0";

    let mut iterative = Database::new();
    setup(&mut iterative);
    let baseline = iterative
        .query_with(query, &QueryOptions::iterative())
        .unwrap();

    let mut decorrelated = Database::new();
    setup(&mut decorrelated);
    let result = decorrelated
        .query_with(query, &QueryOptions::decorrelated())
        .unwrap();
    assert_eq!(
        baseline.rows, result.rows,
        "decorrelated plan must match per-key iterative results"
    );
    // Groups 1/2/3 sum to 15, 7 and 100 — distinct values prove per-key correlation.
    assert_eq!(result.rows.len(), 4);
    let distinct: std::collections::HashSet<String> = result
        .rows
        .iter()
        .map(|r| format!("{:?}", r.get(1)))
        .collect();
    assert_eq!(
        distinct.len(),
        3,
        "every row got the same (whole-table) sum"
    );
}
