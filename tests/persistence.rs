//! Durability, end to end: an engine checkpointed to a `data_dir`, dropped, and
//! reopened must answer the query battery **byte-identically** across shard counts
//! and parallelism, keep the feedback store's learned strategy flips without
//! re-executing the learning workload, replay the longest valid WAL prefix past a
//! torn tail, and reject corrupted snapshots with named errors — never panics.

use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

use udf_decorrelation::common::{Row, Value};
use udf_decorrelation::engine::{Engine, Session};
use udf_decorrelation::optimizer::CostParams;
use udf_decorrelation::persist::{SNAPSHOT_FILE, WAL_FILE};
use udf_decorrelation::prelude::ShardPolicy;

const SERVICE_LEVEL_SQL: &str = "create function service_level(int ckey) returns varchar(10) as \
     begin \
       float totalbusiness; string level; \
       select sum(totalprice) into :totalbusiness from orders where custkey = :ckey; \
       if (totalbusiness > 200000) level = 'Platinum'; \
       else if (totalbusiness > 50000) level = 'Gold'; \
       else level = 'Regular'; \
       return level; \
     end";

/// A unique throwaway data directory, removed when dropped.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "decorr_persistence_{}_{tag}_{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Seeded customer/orders data (identical for every configuration), loaded through
/// the WAL-logged write path.
fn populate(engine: &Engine) {
    let admin = engine.session();
    admin
        .execute(
            "create table customer(custkey int not null, name varchar(25)); \
             create table orders(orderkey int not null, custkey int, totalprice float); \
             create index on orders(custkey)",
        )
        .unwrap();
    let customers: Vec<Row> = (1..=30i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::str(format!("Customer#{i}"))]))
        .collect();
    engine.load_rows("customer", customers).unwrap();
    let mut orders = vec![];
    let mut orderkey = 0i64;
    for i in 1..=30i64 {
        for j in 0..20i64 {
            orderkey += 1;
            orders.push(Row::new(vec![
                Value::Int(orderkey),
                Value::Int(i),
                Value::Float(500.0 * i as f64 + 13.0 * j as f64),
            ]));
        }
    }
    engine.load_rows("orders", orders).unwrap();
    admin.register_function(SERVICE_LEVEL_SQL).unwrap();
    admin.execute("analyze").unwrap();
}

/// One pass of the query battery; returns every result verbatim (row order is part
/// of the byte-identity contract).
fn run_battery(session: &Session) -> Vec<String> {
    let mut log = vec![];
    let mut push = |sql: &str| {
        let result = session.query(sql).unwrap();
        let rows: Vec<String> = result.rows.iter().map(|r| format!("{r:?}")).collect();
        log.push(format!("{sql} => {}", rows.join("|")));
    };
    push("select custkey, name from customer");
    push("select orderkey, totalprice from orders where custkey = 7");
    push("select orderkey from orders where totalprice >= 5000 and totalprice <= 9000");
    push("select custkey, sum(totalprice) as total from orders group by custkey");
    push(
        "select o.orderkey from customer c join orders o on c.custkey = o.custkey \
         where o.totalprice > 12000",
    );
    push("select custkey, service_level(custkey) as level from customer");
    log
}

/// The tentpole property: checkpoint, kill, reopen from `data_dir` — the restored
/// engine answers the battery byte-identically to the live one, across shard
/// counts 1/4/8 and parallelism 1/4, and restoring recomputes no statistics.
#[test]
fn results_are_byte_identical_after_checkpoint_and_reopen() {
    for shards in [1usize, 4, 8] {
        for parallelism in [1usize, 4] {
            let dir = TempDir::new(&format!("roundtrip_{shards}_{parallelism}"));
            let before = {
                let engine = Engine::builder()
                    .data_dir(dir.path())
                    .shard_count(shards)
                    .parallelism(parallelism)
                    .build();
                populate(&engine);
                let before = run_battery(&engine.session());
                engine.checkpoint().unwrap();
                before
                // Dropped without any shutdown protocol: reopen is the recovery.
            };
            let engine = Engine::builder()
                .data_dir(dir.path())
                .parallelism(parallelism)
                .build();
            let stats = engine.persist_stats();
            assert!(stats.active && stats.snapshot_loaded);
            assert_eq!(
                stats.wal_records_replayed, 0,
                "checkpoint truncates the WAL"
            );
            let after = run_battery(&engine.session());
            assert_eq!(
                before, after,
                "restored results diverged at shards={shards} parallelism={parallelism}"
            );
            // The snapshot carried the merged statistics: answering the battery
            // needed no table-statistics rescan on either table.
            let catalog = engine.catalog();
            for table in ["customer", "orders"] {
                assert_eq!(
                    catalog.table(table).unwrap().stats_recomputes(),
                    0,
                    "cold open of {table} must reuse persisted statistics"
                );
            }
        }
    }
}

/// The feedback store's learned state is part of the snapshot: a strategy flip
/// earned by executing a miscosted UDF survives a restart, and the reopened engine
/// picks the decorrelated plan on its *first* query — no re-learning execution.
#[test]
fn learned_strategy_flip_survives_restart_without_reexecution() {
    let dir = TempDir::new("feedback_flip");
    let sql = "select custkey, total_business(custkey) as total from customer";
    let learned_before = {
        let engine = Engine::builder().data_dir(dir.path()).build();
        let session = engine.session();
        session
            .execute(
                "create table customer(custkey int not null); \
                 create table orders(orderkey int not null, custkey int, totalprice float, \
                                     comment varchar(40), clerk varchar(20))",
            )
            .unwrap();
        // Deliberately NO index on orders.custkey: the static model prices the
        // correlated plan with an index discount that does not exist.
        let customers: Vec<String> = (0..40).map(|i| format!("({i})")).collect();
        session
            .execute(&format!(
                "insert into customer values {}",
                customers.join(", ")
            ))
            .unwrap();
        let mut orders = vec![];
        for i in 0..8_000i64 {
            orders.push(Row::new(vec![
                i.into(),
                (i % 40).into(),
                (i as f64).into(),
                format!("order comment number {i}").into(),
                format!("Clerk#{}", i % 100).into(),
            ]));
        }
        engine.load_rows("orders", orders).unwrap();
        session
            .register_function(
                "create function total_business(int ckey) returns float as \
                 begin return select sum(totalprice) from orders where custkey = :ckey; end",
            )
            .unwrap();
        let first = session.query(sql).unwrap();
        assert!(
            !first.used_decorrelated_plan,
            "premise: the static model must pick the iterative plan"
        );
        let second = session.query(sql).unwrap();
        assert!(
            second.used_decorrelated_plan,
            "premise: feedback must flip the strategy before the restart"
        );
        engine.checkpoint().unwrap();
        engine
            .feedback()
            .udf_cost_overrides(CostParams::default().row_op_seconds)
            .get("total_business")
            .copied()
            .expect("learned cost present before restart")
    };
    let engine = Engine::builder().data_dir(dir.path()).build();
    let learned_after = engine
        .feedback()
        .udf_cost_overrides(CostParams::default().row_op_seconds)
        .get("total_business")
        .copied()
        .expect("learned UDF cost must survive the restart");
    assert_eq!(
        learned_after.to_bits(),
        learned_before.to_bits(),
        "restored learned cost must be bit-identical"
    );
    // First post-restart query: the learned cost flips the decision immediately —
    // zero iterative invocations ever happen in this process.
    let restored = engine.session().query(sql).unwrap();
    assert!(
        restored.used_decorrelated_plan,
        "restored feedback must flip the strategy without re-execution \
         (notes: {:?})",
        restored.rewrite_notes
    );
    assert_eq!(restored.exec_stats.udf_invocations, 0);
}

/// A torn WAL tail (process killed mid-append) must not poison recovery: reopen
/// replays the longest valid prefix, truncates the tail, and keeps serving writes.
#[test]
fn torn_wal_tail_replays_valid_prefix_and_keeps_serving() {
    let dir = TempDir::new("torn_tail");
    {
        let engine = Engine::builder().data_dir(dir.path()).build();
        let session = engine.session();
        session.execute("create table t(x int)").unwrap();
        for i in 0..5 {
            session
                .execute(&format!("insert into t values ({i})"))
                .unwrap();
        }
    }
    // Tear the tail: chop 3 bytes off the last frame.
    let wal_path = dir.path().join(WAL_FILE);
    let len = std::fs::metadata(&wal_path).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap()
        .set_len(len - 3)
        .unwrap();
    let engine = Engine::builder().data_dir(dir.path()).build();
    let stats = engine.persist_stats();
    assert_eq!(
        stats.wal_records_replayed, 5,
        "create-table plus the four intact inserts replay; the torn fifth is dropped"
    );
    let result = engine.session().query("select x from t").unwrap();
    assert_eq!(result.rows.len(), 4);
    // The engine keeps serving writes after the truncation, and they are durable.
    engine
        .session()
        .execute("insert into t values (99)")
        .unwrap();
    drop(engine);
    let reopened = Engine::builder().data_dir(dir.path()).build();
    let result = reopened.session().query("select x from t").unwrap();
    assert_eq!(result.rows.len(), 5);
}

/// A flipped byte anywhere in the snapshot is a named `persist` error (the checksum
/// catches it); a truncated snapshot likewise. Neither panics.
#[test]
fn corrupt_snapshots_are_rejected_with_named_errors() {
    let dir = TempDir::new("corrupt_snapshot");
    {
        let engine = Engine::builder().data_dir(dir.path()).build();
        let session = engine.session();
        session
            .execute("create table t(x int); insert into t values (1), (2), (3)")
            .unwrap();
        engine.checkpoint().unwrap();
    }
    let snapshot_path = dir.path().join(SNAPSHOT_FILE);
    let good = std::fs::read(&snapshot_path).unwrap();

    // Flip one byte in the middle of the payload.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    std::fs::write(&snapshot_path, &flipped).unwrap();
    let err = Engine::builder()
        .data_dir(dir.path())
        .try_build()
        .unwrap_err();
    assert_eq!(err.kind(), "persist");

    // Truncate the snapshot.
    std::fs::write(&snapshot_path, &good[..good.len() - 9]).unwrap();
    let err = Engine::builder()
        .data_dir(dir.path())
        .try_build()
        .unwrap_err();
    assert_eq!(err.kind(), "persist");

    // Restoring the intact bytes recovers everything.
    std::fs::write(&snapshot_path, &good).unwrap();
    let engine = Engine::builder().data_dir(dir.path()).try_build().unwrap();
    let result = engine.session().query("select x from t").unwrap();
    assert_eq!(result.rows.len(), 3);
}

/// The `Hash` placement policy is reachable through the public API, reroutes
/// existing rows without changing results, and both the per-table switch and the
/// builder default survive a restart.
#[test]
fn hash_placement_is_reachable_and_durable() {
    let dir = TempDir::new("hash_placement");
    {
        let engine = Engine::builder()
            .data_dir(dir.path())
            .shard_count(4)
            .build();
        let session = engine.session();
        session.execute("create table t(x int, y int)").unwrap();
        let rows: Vec<Row> = (0..200i64)
            .map(|i| Row::new(vec![Value::Int(i), Value::Int(i * 3)]))
            .collect();
        engine.load_rows("t", rows).unwrap();
        let before = engine
            .session()
            .query("select x, y from t")
            .unwrap()
            .canonical_projection(&["x", "y"])
            .unwrap();
        engine.set_table_placement("t", ShardPolicy::Hash).unwrap();
        let table = engine.catalog().table_arc("t").unwrap();
        assert_eq!(table.shard_policy(), ShardPolicy::Hash);
        assert!(
            table.shards().iter().all(|s| !s.is_empty()),
            "hash routing must spread 200 rows over all 4 shards"
        );
        let after = engine
            .session()
            .query("select x, y from t")
            .unwrap()
            .canonical_projection(&["x", "y"])
            .unwrap();
        assert_eq!(before, after, "rerouting must not change the row multiset");
        // Durable via the WAL alone (no checkpoint).
    }
    let engine = Engine::builder().data_dir(dir.path()).build();
    let table = engine.catalog().table_arc("t").unwrap();
    assert_eq!(table.shard_policy(), ShardPolicy::Hash);
    assert_eq!(table.row_count(), 200);
    assert!(table.shards().iter().all(|s| !s.is_empty()));
}
